/**
 * @file
 * Unit tests for the APRES core: LLT, WGT, the LAWS scheduler and the
 * SAP prefetcher, including the paper's own worked examples (Fig. 8,
 * Fig. 9) and the Table II hardware cost.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apres/hardware_cost.hpp"
#include "apres/laws.hpp"
#include "apres/sap.hpp"
#include "fake_sm.hpp"

namespace apres {
namespace {

TEST(Llt, TracksLastLoadPc)
{
    LastLoadTable llt(4);
    EXPECT_EQ(llt.get(2), kInvalidPc);
    llt.set(2, 0x10);
    EXPECT_EQ(llt.get(2), 0x10u);
    llt.set(2, 0x20);
    EXPECT_EQ(llt.get(2), 0x20u);
}

TEST(Llt, MatchMaskFindsPeers)
{
    // The Fig. 8 example: warps 0, 2 and 3 share LLPC 0x10.
    LastLoadTable llt(4);
    llt.set(0, 0x10);
    llt.set(1, 0x20);
    llt.set(2, 0x10);
    llt.set(3, 0x10);
    EXPECT_EQ(llt.matchMask(0x10), WarpMask::ofWord(0b1101));
    EXPECT_EQ(llt.matchMask(0x20), WarpMask::ofWord(0b0010));
    EXPECT_TRUE(llt.matchMask(0x30).none());
    EXPECT_TRUE(llt.matchMask(kInvalidPc).none());
}

TEST(Llt, MatchMaskCoversWarpsBeyond64)
{
    // Regression: the raw-uint64 mask silently dropped warps 64+ (the
    // loop bound was `w < 64`); the WarpMask migration must find peers
    // across the whole table.
    LastLoadTable llt(80);
    llt.set(3, 0x10);
    llt.set(63, 0x10);
    llt.set(64, 0x10);
    llt.set(79, 0x10);
    const WarpMask mask = llt.matchMask(0x10);
    EXPECT_EQ(mask.count(), 4);
    EXPECT_TRUE(mask.test(3));
    EXPECT_TRUE(mask.test(63));
    EXPECT_TRUE(mask.test(64));
    EXPECT_TRUE(mask.test(79));
    EXPECT_FALSE(mask.test(65));
}

TEST(Wgt, InsertAndTake)
{
    WarpGroupTable wgt;
    wgt.insert(0, 0x20, WarpMask::ofWord(0b1101));
    EXPECT_EQ(wgt.validCount(), 1);
    EXPECT_EQ(wgt.take(0, 0x20), WarpMask::ofWord(0b1101));
    // Taking invalidates.
    EXPECT_TRUE(wgt.take(0, 0x20).none());
    EXPECT_EQ(wgt.validCount(), 0);
}

TEST(Wgt, ReplacesOldestWhenFull)
{
    WarpGroupTable wgt; // 3 entries (pipeline depth, Table II)
    wgt.insert(0, 0x10, WarpMask::ofWord(0b0001));
    wgt.insert(1, 0x10, WarpMask::ofWord(0b0010));
    wgt.insert(2, 0x10, WarpMask::ofWord(0b0100));
    wgt.insert(3, 0x10, WarpMask::ofWord(0b1000)); // evicts (0, 0x10)
    EXPECT_TRUE(wgt.take(0, 0x10).none());
    EXPECT_EQ(wgt.take(3, 0x10), WarpMask::ofWord(0b1000));
}

TEST(Wgt, SameKeyOverwritesInPlace)
{
    WarpGroupTable wgt;
    wgt.insert(0, 0x10, WarpMask::ofWord(0b0001));
    wgt.insert(0, 0x10, WarpMask::ofWord(0b0011));
    EXPECT_EQ(wgt.validCount(), 1);
    EXPECT_EQ(wgt.take(0, 0x10), WarpMask::ofWord(0b0011));
}

LoadAccessInfo
result(WarpId warp, Pc pc, Addr addr, bool hit)
{
    LoadAccessInfo info;
    info.warp = warp;
    info.pc = pc;
    info.baseAddr = addr;
    info.baseLineAddr = addr & ~Addr{127};
    info.hit = hit;
    return info;
}

TEST(Laws, GroupsByLlpcAndPromotesOnHit)
{
    FakeSm sm(12);
    LawsScheduler laws;
    laws.attach(sm);

    // Warps 8..11 execute load X (0x10): they share LLPC 0x10 and sit
    // at the back of the queue.
    for (int w = 8; w < 12; ++w)
        laws.notifyLoadIssued(w, 0x10, 0);
    // Warp 8 issues load Y (0x20): group = {8..11}.
    laws.notifyLoadIssued(8, 0x20, 10);
    EXPECT_EQ(laws.stats().groupsFormed, 5u);

    // Y hits: the group moves to the queue head.
    laws.notifyAccessResult(result(8, 0x20, 0x1000, true));
    EXPECT_EQ(laws.stats().groupHits, 1u);
    EXPECT_GT(laws.stats().warpsPrioritized, 0u);
    const auto order = laws.queueOrder();
    EXPECT_GE(order[0], 8);
    EXPECT_GE(order[1], 8);
    EXPECT_GE(order[2], 8);
    EXPECT_GE(order[3], 8);
}

TEST(Laws, DemotesGroupOnMiss)
{
    FakeSm sm(6);
    LawsScheduler laws;
    laws.attach(sm);
    for (int w = 0; w < 6; ++w)
        laws.notifyLoadIssued(w, 0x10, 0);

    // Make warps 0..2 a distinct group: they advance to load 0x20.
    for (int w = 0; w < 3; ++w)
        laws.notifyLoadIssued(w, 0x20, 5);

    // Warp 3 issues 0x20; its group = warps still at LLPC 0x10 (3,4,5).
    laws.notifyLoadIssued(3, 0x20, 10);
    laws.notifyAccessResult(result(3, 0x20, 0x5000, false));
    EXPECT_EQ(laws.stats().groupMisses, 1u);
    // The demoted warps sit at the queue tail.
    const auto order = laws.queueOrder();
    ASSERT_EQ(order.size(), 6u);
    // Warps 3,4,5 (the group) must occupy the last three positions.
    for (std::size_t i = 3; i < 6; ++i)
        EXPECT_GE(order[i], 3);
}

TEST(Laws, PickFollowsQueueOrder)
{
    FakeSm sm(4);
    LawsScheduler laws;
    laws.attach(sm);
    EXPECT_EQ(laws.pick(0, {1, 2, 3}), 1); // 0 not ready -> next in queue
    EXPECT_EQ(laws.pick(1, {0, 3}), 0);
}

TEST(Laws, PendingGroupMissConsumedOnce)
{
    FakeSm sm(6);
    LawsScheduler laws;
    laws.attach(sm);
    for (int w = 0; w < 6; ++w)
        laws.notifyLoadIssued(w, 0x10, 0);
    laws.notifyLoadIssued(0, 0x20, 10);
    laws.notifyAccessResult(result(0, 0x20, 0x5000, false));

    const auto group = laws.takePendingGroupMiss(0, 0x20);
    EXPECT_TRUE(group.valid);
    EXPECT_TRUE(group.members.any());
    EXPECT_FALSE(group.members.test(0)); // owner excluded
    // Second take returns nothing.
    EXPECT_FALSE(laws.takePendingGroupMiss(0, 0x20).valid);
}

TEST(Laws, RelaunchedWarpJoinsTail)
{
    FakeSm sm(4);
    LawsScheduler laws;
    laws.attach(sm);
    laws.notifyWarpRelaunched(0);
    EXPECT_EQ(laws.queueOrder().back(), 0);
}

TEST(Laws, FinishedWarpLeavesQueue)
{
    FakeSm sm(4);
    LawsScheduler laws;
    laws.attach(sm);
    laws.notifyWarpFinished(2);
    const auto order = laws.queueOrder();
    EXPECT_EQ(order.size(), 3u);
    for (const WarpId w : order)
        EXPECT_NE(w, 2);
}

TEST(Laws, GroupCapLimitsMembership)
{
    FakeSm sm(16);
    LawsConfig cfg;
    cfg.groupCap = 4;
    LawsScheduler laws(cfg);
    laws.attach(sm);
    for (int w = 0; w < 16; ++w)
        laws.notifyLoadIssued(w, 0x10, 0);
    laws.notifyLoadIssued(0, 0x20, 10);
    laws.notifyAccessResult(result(0, 0x20, 0x5000, false));
    const auto group = laws.takePendingGroupMiss(0, 0x20);
    ASSERT_TRUE(group.valid);
    EXPECT_LE(group.members.count(), 4);
}

/**
 * The paper's Fig. 9 walk-through: PT holds (PC 200, warp 10, addr
 * 2800, stride 100); warp 2 misses at 2000. Calculated stride
 * (2000-2800)/(2-10) = 100 matches, so every group warp w gets a
 * prefetch at 2000 + (w-2)*100 — warp 1's target is 1900.
 */
TEST(Sap, Figure9WorkedExample)
{
    FakeSm sm(16);
    LawsScheduler laws;
    laws.attach(sm);
    SapPrefetcher sap(laws);
    RecordingIssuer issuer;

    // Train the PT: warp 10 executed PC 200 at address 2800 after an
    // earlier execution established stride 100 (warp 5 at 2300).
    sap.onAccess(result(5, 200, 2300, false), issuer);
    sap.onAccess(result(10, 200, 2800, false), issuer);
    ASSERT_TRUE(issuer.requests.empty()); // no group miss staged yet

    // Group {1, 3} is staged by LAWS for warp 2's miss at PC 200.
    for (const int w : {1, 3})
        laws.notifyLoadIssued(w, 0x10, 0);
    laws.notifyLoadIssued(2, 0x10, 0);
    laws.notifyLoadIssued(2, 200, 5);
    laws.notifyAccessResult(result(2, 200, 2000, false));

    sap.onAccess(result(2, 200, 2000, false), issuer);
    ASSERT_EQ(issuer.requests.size(), 2u);
    EXPECT_EQ(issuer.requests[0].addr, 1900u); // warp 1: 2000 + (1-2)*100
    EXPECT_EQ(issuer.requests[0].warp, 1);
    EXPECT_EQ(issuer.requests[1].addr, 2100u); // warp 3: 2000 + (3-2)*100
    EXPECT_EQ(issuer.requests[1].warp, 3);
    EXPECT_EQ(sap.stats().strideMatches, 1u);
}

TEST(Sap, MismatchedStrideSuppressesPrefetch)
{
    FakeSm sm(8);
    LawsScheduler laws;
    laws.attach(sm);
    SapPrefetcher sap(laws);
    RecordingIssuer issuer;

    sap.onAccess(result(0, 200, 1000, false), issuer);
    sap.onAccess(result(1, 200, 1100, false), issuer); // stride 100

    laws.notifyLoadIssued(3, 0x10, 0);
    laws.notifyLoadIssued(2, 0x10, 0);
    laws.notifyLoadIssued(2, 200, 5);
    laws.notifyAccessResult(result(2, 200, 9999, false));
    sap.onAccess(result(2, 200, 9999, false), issuer); // stride mismatch
    EXPECT_TRUE(issuer.requests.empty());
    EXPECT_EQ(sap.stats().strideMismatches, 1u);
}

TEST(Sap, InexactDivisionIgnored)
{
    FakeSm sm(8);
    LawsScheduler laws;
    laws.attach(sm);
    SapPrefetcher sap(laws);
    RecordingIssuer issuer;

    // Warp delta 3, address delta 100: not an integral per-warp
    // stride; the trained stride must survive.
    sap.onAccess(result(0, 200, 1000, false), issuer);
    sap.onAccess(result(1, 200, 1100, false), issuer);
    sap.onAccess(result(4, 200, 1200, false), issuer); // (100)/(3): inexact
    sap.onAccess(result(5, 200, 1300, false), issuer); // stride 100 again
    EXPECT_EQ(sap.stats().prefetchesGenerated, 0u); // no group miss yet
}

TEST(Sap, PrefetchTargetsPromotedInLaws)
{
    FakeSm sm(8);
    LawsScheduler laws;
    laws.attach(sm);
    SapPrefetcher sap(laws);
    RecordingIssuer issuer;

    sap.onAccess(result(0, 200, 1000, false), issuer);
    sap.onAccess(result(1, 200, 1100, false), issuer);

    for (const int w : {6, 7})
        laws.notifyLoadIssued(w, 0x10, 0);
    laws.notifyLoadIssued(2, 0x10, 0);
    laws.notifyLoadIssued(2, 200, 5);
    laws.notifyAccessResult(result(2, 200, 1200, false));
    sap.onAccess(result(2, 200, 1200, false), issuer);

    EXPECT_EQ(issuer.requests.size(), 2u);
    EXPECT_GT(laws.stats().prefetchTargetPromotions, 0u);
    // The prefetch-target warps (6, 7) lead the queue.
    const auto order = laws.queueOrder();
    EXPECT_TRUE((order[0] == 6 && order[1] == 7) ||
                (order[0] == 7 && order[1] == 6));
}

TEST(Sap, ZeroStrideNeverPrefetches)
{
    FakeSm sm(8);
    LawsScheduler laws;
    laws.attach(sm);
    SapPrefetcher sap(laws);
    RecordingIssuer issuer;

    sap.onAccess(result(0, 200, 1000, false), issuer);
    sap.onAccess(result(1, 200, 1000, false), issuer); // stride 0

    laws.notifyLoadIssued(3, 0x10, 0);
    laws.notifyLoadIssued(2, 0x10, 0);
    laws.notifyLoadIssued(2, 200, 5);
    laws.notifyAccessResult(result(2, 200, 1000, false));
    sap.onAccess(result(2, 200, 1000, false), issuer);
    EXPECT_TRUE(issuer.requests.empty());
}

TEST(Sap, PtEvictsTrueLruEntryNotSlotZero)
{
    FakeSm sm(8);
    LawsScheduler laws;
    laws.attach(sm);
    SapPrefetcher sap(laws);
    RecordingIssuer issuer;

    // Fill all 10 PT entries with distinct PCs, oldest first.
    for (Pc pc = 100; pc < 110; ++pc)
        sap.onAccess(result(0, pc, 1000, false), issuer);

    // Re-touch PC 100: it becomes the most recently used, so slot 0
    // no longer holds the LRU entry — PC 101 does.
    sap.onAccess(result(1, 100, 1100, false), issuer);

    // One more PC forces an eviction, which must hit PC 101 (true
    // LRU), not PC 100 in slot 0.
    sap.onAccess(result(0, 110, 2000, false), issuer);

    const std::vector<Pc> resident = sap.ptResidentPcs();
    ASSERT_EQ(resident.size(), 10u);
    EXPECT_EQ(std::count(resident.begin(), resident.end(), 100u), 1);
    EXPECT_EQ(std::count(resident.begin(), resident.end(), 110u), 1);
    EXPECT_EQ(std::count(resident.begin(), resident.end(), 101u), 0);
    // LRU order: 102 is now the oldest, the fresh 110 the newest.
    EXPECT_EQ(resident.front(), 102u);
    EXPECT_EQ(resident.back(), 110u);
}

TEST(Sap, LookupRefreshesRecencyBeforeEviction)
{
    FakeSm sm(8);
    LawsScheduler laws;
    laws.attach(sm);
    SapPrefetcher sap(laws);
    RecordingIssuer issuer;

    for (Pc pc = 100; pc < 110; ++pc)
        sap.onAccess(result(0, pc, 1000, false), issuer);

    // An access to the oldest entry (PC 100) and an insert arriving in
    // the same cycle: the lookup must stamp recency first so the
    // insert's victim scan never evicts the just-touched entry.
    sap.onAccess(result(1, 100, 1100, false), issuer);
    sap.onAccess(result(0, 200, 5000, false), issuer);

    const std::vector<Pc> resident = sap.ptResidentPcs();
    EXPECT_EQ(std::count(resident.begin(), resident.end(), 100u), 1);
    EXPECT_EQ(std::count(resident.begin(), resident.end(), 200u), 1);
}

TEST(Sap, GroupWalkCoversWarpsBeyond64)
{
    // Wide machines used to be rejected at attach because group masks
    // were 64-bit words; with WarpMask the whole LAWS->SAP pipeline
    // must group, demote and hand over warps 64+.
    FakeSm sm(80);
    LawsConfig cfg;
    cfg.groupCap = 80; // default 48 would trim the wide group
    LawsScheduler laws(cfg);
    SapPrefetcher sap(laws);
    laws.attach(sm);
    sap.attach(sm);

    for (int w = 0; w < 80; ++w)
        laws.notifyLoadIssued(w, 0x10, 0);
    laws.notifyLoadIssued(70, 0x20, 10);
    laws.notifyAccessResult(result(70, 0x20, 0x5000, false));
    const auto group = laws.takePendingGroupMiss(70, 0x20);
    ASSERT_TRUE(group.valid);
    // Every other warp still has LLPC 0x10... except the 0x20 issuer.
    EXPECT_EQ(group.members.count(), 79);
    EXPECT_TRUE(group.members.test(79));
    EXPECT_FALSE(group.members.test(70)); // owner excluded
}

TEST(HardwareCost, Table2Reproduced)
{
    const HardwareCost cost = computeHardwareCost();
    // Table II: LLT 4Bx48 = 192, WGT 48bx3 = 18, DRQ 8Bx32 = 256,
    // WQ 1Bx48 = 48, PT (4+1+8+8)Bx10 = 210. Total 724 bytes.
    EXPECT_EQ(cost.lltBytes, 192u);
    EXPECT_EQ(cost.wgtBytes, 18u);
    EXPECT_EQ(cost.drqBytes, 256u);
    EXPECT_EQ(cost.wqBytes, 48u);
    EXPECT_EQ(cost.ptBytes, 210u);
    EXPECT_EQ(cost.lawsBytes(), 210u);
    EXPECT_EQ(cost.sapBytes(), 514u);
    EXPECT_EQ(cost.totalBytes(), 724u);
}

TEST(HardwareCost, FractionOfL1Near2Percent)
{
    const HardwareCost cost = computeHardwareCost();
    // The paper reports ~2.06% of the 32 KB L1 (their CACTI-based
    // figure includes peripheral overhead; raw storage is ~2.2%).
    const double fraction = cost.fractionOfL1(32 * 1024);
    EXPECT_GT(fraction, 0.015);
    EXPECT_LT(fraction, 0.03);
}

TEST(HardwareCost, ScalesWithParameters)
{
    HardwareCostParams params;
    params.warpsPerSm = 64;
    const HardwareCost cost = computeHardwareCost(params);
    EXPECT_EQ(cost.lltBytes, 256u);
    EXPECT_EQ(cost.wgtBytes, 24u);
}

} // namespace
} // namespace apres
