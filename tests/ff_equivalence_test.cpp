/**
 * @file
 * Fast-forward equivalence suite: the event-driven engine
 * (sim.fastForward, default on) must produce *bitwise identical*
 * statistics to the naive cycle-by-cycle loop — the whole
 * RunResult::toStatSet() dump, every key and every value — for every
 * registered scheduler x prefetcher combination and for kernel shapes
 * that exercise every wakeup source: loads (Table IV workloads),
 * block barriers, and store-heavy bodies.
 *
 * This pins down the engine's invariant (DESIGN.md, "Simulation
 * core"): a skipped cycle is one in which provably no SM could issue,
 * so skipping it changes nothing but how fast the wall clock moves.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "isa/address_gen.hpp"
#include "isa/kernel.hpp"
#include "sim/gpu.hpp"
#include "sim/policy_registry.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

GpuConfig
smallGpu(const std::string& sched, const std::string& pf)
{
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 16;
    cfg.sm.warpsPerBlock = 16;
    cfg.sm.jobsPerWarp = 2;
    cfg.scheduler = sched;
    cfg.prefetcher = pf;
    cfg.maxCycles = 2'000'000;
    return cfg;
}

/**
 * Barrier-heavy kernel: two warp-blocks per SM (warpsPerBlock below
 * warpsPerSm) that alternate a long-latency strided load with a
 * block-wide barrier, so warps repeatedly park at the barrier while
 * stragglers wait on memory — the barrier-release wakeup path.
 */
Kernel
makeBarrierKernel()
{
    KernelBuilder b("barrier-heavy");
    const int v = b.load(std::make_unique<StridedGen>(
        Addr{0x2000'0000}, /*warp_stride=*/std::int64_t{1} << 18,
        /*iter_stride=*/128));
    b.barrier();
    const int w = b.alu({v}, /*count=*/2);
    b.barrier();
    b.store(std::make_unique<StridedGen>(Addr{0x6000'0000},
                                         /*warp_stride=*/std::int64_t{1}
                                             << 18,
                                         /*iter_stride=*/128),
            w);
    return b.build(/*trip_count=*/40);
}

/**
 * Store-heavy kernel: three stores per loaded value; the LSU queue is
 * dominated by stores (which complete without tracking), exercising
 * the canAccept() back-pressure wakeup path.
 */
Kernel
makeStoreKernel()
{
    KernelBuilder b("store-heavy");
    const int v = b.load(std::make_unique<StridedGen>(
        Addr{0x3000'0000}, /*warp_stride=*/std::int64_t{1} << 18,
        /*iter_stride=*/128));
    const int w = b.alu({v});
    for (int i = 0; i < 3; ++i) {
        b.store(std::make_unique<StridedGen>(
                    Addr{0x7000'0000} + static_cast<Addr>(i) * 0x100'0000,
                    /*warp_stride=*/std::int64_t{1} << 18,
                    /*iter_stride=*/128),
                w);
    }
    return b.build(/*trip_count=*/60);
}

/** The kernels every combination is checked against. */
struct NamedKernel
{
    std::string name;
    std::shared_ptr<const Kernel> kernel;
    int warpsPerBlock = 0; ///< 0 = leave the config's default
};

const std::vector<NamedKernel>&
kernelsUnderTest()
{
    static const std::vector<NamedKernel> kernels = [] {
        std::vector<NamedKernel> out;
        // Table IV shapes: KM thrashes a 2 MB window (cache-sensitive
        // irregular), NW streams with stores, BFS has high-locality
        // irregular loads.
        for (const char* name : {"KM", "NW", "BFS"}) {
            out.push_back({name,
                           std::make_shared<const Kernel>(
                               makeWorkload(name, 0.05).kernel),
                           0});
        }
        out.push_back({"barrier-heavy",
                       std::make_shared<const Kernel>(makeBarrierKernel()),
                       /*warpsPerBlock=*/8});
        out.push_back({"store-heavy",
                       std::make_shared<const Kernel>(makeStoreKernel()),
                       0});
        return out;
    }();
    return kernels;
}

/** EXPECT_EQ on every key and value of two StatSet dumps. */
void
expectBitwiseIdentical(const StatSet& want, const StatSet& got,
                       const std::string& label)
{
    const std::map<std::string, double>& a = want.entries();
    const std::map<std::string, double>& b = got.entries();
    ASSERT_EQ(a.size(), b.size()) << label;
    auto ib = b.begin();
    for (auto ia = a.begin(); ia != a.end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first) << label;
        EXPECT_EQ(ia->second, ib->second)
            << label << ": stat '" << ia->first << "' diverged";
    }
}

/** One scheduler x prefetcher pair, gtest-parameterized. */
using Combo = std::tuple<std::string, std::string>;

class FfEquivalence : public ::testing::TestWithParam<Combo>
{
};

TEST_P(FfEquivalence, StatSetBitwiseIdentical)
{
    const auto& [sched, pf] = GetParam();
    if (pf == "sap" && sched != "laws")
        GTEST_SKIP() << "SAP pairs only with LAWS";

    for (const NamedKernel& nk : kernelsUnderTest()) {
        GpuConfig cfg = smallGpu(sched, pf);
        if (nk.warpsPerBlock > 0)
            cfg.sm.warpsPerBlock = nk.warpsPerBlock;

        GpuConfig naive_cfg = cfg;
        naive_cfg.fastForward = false;
        GpuConfig ff_cfg = cfg;
        ff_cfg.fastForward = true;
        // Run the invariant auditor on the fast-forward side only:
        // the comparison then also proves auditing is pure
        // observation (stats stay bitwise identical to an unaudited
        // naive run) and that the whole matrix is violation-free,
        // including the skip-window checks after every jump.
        ff_cfg.audit = true;

        const StatSet naive = simulate(naive_cfg, *nk.kernel).toStatSet();
        const StatSet ff = simulate(ff_cfg, *nk.kernel).toStatSet();
        const std::map<std::string, double>& a = naive.entries();
        const std::map<std::string, double>& b = ff.entries();

        ASSERT_EQ(a.size(), b.size()) << nk.name;
        auto ib = b.begin();
        for (auto ia = a.begin(); ia != a.end(); ++ia, ++ib) {
            EXPECT_EQ(ia->first, ib->first) << nk.name;
            EXPECT_EQ(ia->second, ib->second)
                << nk.name << ": stat '" << ia->first << "' diverged";
        }
    }
}

/**
 * StatSet entries minus the opt-in "metrics." namespace. Metrics keys
 * exist only when sampling is on, so the purity comparison strips them
 * before demanding bitwise equality of everything else.
 */
std::map<std::string, double>
entriesWithoutMetrics(const StatSet& stats)
{
    std::map<std::string, double> out;
    for (const auto& [key, value] : stats.entries()) {
        if (key.rfind("metrics.", 0) != 0)
            out.emplace(key, value);
    }
    return out;
}

TEST_P(FfEquivalence, ObservationIsPure)
{
    // Tracing and metrics must be pure observation: every simulation
    // statistic bitwise identical with both sinks installed vs
    // neither, in both engines. The naive side re-runs the equivalence
    // matrix at maximal emission density (every cycle ticks), the ff
    // side covers the bulk-skip paths and the engine-lane spans.
    const auto& [sched, pf] = GetParam();
    if (pf == "sap" && sched != "laws")
        GTEST_SKIP() << "SAP pairs only with LAWS";

    for (const NamedKernel& nk : kernelsUnderTest()) {
        GpuConfig cfg = smallGpu(sched, pf);
        if (nk.warpsPerBlock > 0)
            cfg.sm.warpsPerBlock = nk.warpsPerBlock;

        GpuConfig base_cfg = cfg;
        base_cfg.fastForward = true;
        GpuConfig obs_ff_cfg = base_cfg;
        obs_ff_cfg.trace = true;
        obs_ff_cfg.metrics = true;
        GpuConfig obs_naive_cfg = obs_ff_cfg;
        obs_naive_cfg.fastForward = false;

        const std::map<std::string, double> base = entriesWithoutMetrics(
            simulate(base_cfg, *nk.kernel).toStatSet());
        for (const GpuConfig& obs_cfg : {obs_naive_cfg, obs_ff_cfg}) {
            const std::map<std::string, double> obs =
                entriesWithoutMetrics(
                    simulate(obs_cfg, *nk.kernel).toStatSet());
            const char* engine =
                obs_cfg.fastForward ? "ff" : "naive";
            ASSERT_EQ(base.size(), obs.size()) << nk.name << " " << engine;
            auto io = obs.begin();
            for (auto ib = base.begin(); ib != base.end(); ++ib, ++io) {
                EXPECT_EQ(ib->first, io->first)
                    << nk.name << " " << engine;
                EXPECT_EQ(ib->second, io->second)
                    << nk.name << " (" << engine << "): stat '"
                    << ib->first << "' perturbed by observation";
            }
        }
    }
}

TEST_P(FfEquivalence, ParallelEngineBitwiseIdentical)
{
    // The sharded epoch engine (sim.shards > 1) against the serial
    // oracle, across the same scheduler x prefetcher x kernel matrix:
    // the whole toStatSet() dump must be bitwise identical for every
    // shard count. Variants cover an even split (2 shards over 4 SMs),
    // an uneven split without fast-forward (3 shards, naive workers),
    // and the hardware-concurrency default (shards=0, clamped to
    // numSms), with the auditor enabled on one of them to prove epoch
    // audits fire at the same cycles and stay pure.
    const auto& [sched, pf] = GetParam();
    if (pf == "sap" && sched != "laws")
        GTEST_SKIP() << "SAP pairs only with LAWS";

    for (const NamedKernel& nk : kernelsUnderTest()) {
        GpuConfig cfg = smallGpu(sched, pf);
        cfg.numSms = 4;
        if (nk.warpsPerBlock > 0)
            cfg.sm.warpsPerBlock = nk.warpsPerBlock;

        const StatSet serial = simulate(cfg, *nk.kernel).toStatSet();

        struct Variant
        {
            int shards;
            bool fastForward;
            bool audit;
            const char* name;
        };
        for (const Variant& v :
             {Variant{2, true, true, "shards2-ff-audit"},
              Variant{3, false, false, "shards3-naive"},
              Variant{0, true, false, "shards-hw"}}) {
            GpuConfig par_cfg = cfg;
            par_cfg.shards = v.shards;
            par_cfg.fastForward = v.fastForward;
            par_cfg.audit = v.audit;
            const StatSet par = simulate(par_cfg, *nk.kernel).toStatSet();
            expectBitwiseIdentical(serial, par,
                                   nk.name + std::string("/") + v.name);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FfEquivalence,
    ::testing::Combine(::testing::ValuesIn(schedulerNames()),
                       ::testing::ValuesIn(prefetcherNames())),
    [](const ::testing::TestParamInfo<Combo>& info) {
        return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// --- Parallel-engine axes beyond the combo matrix -------------------

/**
 * The issue's shard axis {1, 2, 7, hw} on a 7-SM chip: 7 shards puts
 * one SM per worker, 2 shards splits 4/3 (uneven), hw clamps to 7.
 * APRES policies (LAWS + SAP) so the full WGT/LLT/PT machinery runs
 * under sharding.
 */
TEST(ParallelEngine, ShardAxisOverSevenSms)
{
    GpuConfig cfg = smallGpu("laws", "sap");
    cfg.numSms = 7;
    const Kernel kernel = makeWorkload("KM", 0.05).kernel;

    const StatSet serial = simulate(cfg, kernel).toStatSet();
    for (int shards : {2, 7, 0}) {
        GpuConfig par_cfg = cfg;
        par_cfg.shards = shards;
        const StatSet par = simulate(par_cfg, kernel).toStatSet();
        expectBitwiseIdentical(serial, par,
                               "shards=" + std::to_string(shards));
    }
}

/**
 * Observation purity under sharding: with tracing + metrics + audit
 * on, a 3-shard run must (a) leave every simulation statistic bitwise
 * identical to an unobserved 3-shard run, (b) produce the *same
 * merged metrics values* as an observed serial run (per-SM registry
 * merge is exact), and (c) emit the identical per-lane event sequence
 * as the serial engine — the golden-trace contract is engine-blind.
 */
TEST(ParallelEngine, ObservationIsPureUnderSharding)
{
    GpuConfig cfg = smallGpu("laws", "sap");
    cfg.numSms = 4;
    cfg.shards = 3;
    const Kernel kernel = makeWorkload("BFS", 0.05).kernel;

    const std::map<std::string, double> base =
        entriesWithoutMetrics(simulate(cfg, kernel).toStatSet());

    GpuConfig obs_cfg = cfg;
    obs_cfg.trace = true;
    obs_cfg.metrics = true;
    obs_cfg.audit = true;
    Gpu par_gpu(obs_cfg, kernel);
    const StatSet par = par_gpu.run().toStatSet();
    const std::map<std::string, double> par_stripped =
        entriesWithoutMetrics(par);

    ASSERT_EQ(base.size(), par_stripped.size());
    auto ip = par_stripped.begin();
    for (auto ib = base.begin(); ib != base.end(); ++ib, ++ip) {
        EXPECT_EQ(ib->first, ip->first);
        EXPECT_EQ(ib->second, ip->second)
            << "stat '" << ib->first << "' perturbed by observation";
    }

    GpuConfig obs_serial_cfg = obs_cfg;
    obs_serial_cfg.shards = 1;
    Gpu serial_gpu(obs_serial_cfg, kernel);
    const StatSet serial = serial_gpu.run().toStatSet();
    expectBitwiseIdentical(serial, par, "observed serial vs 3 shards");

    ASSERT_NE(serial_gpu.tracer(), nullptr);
    ASSERT_NE(par_gpu.tracer(), nullptr);
    EXPECT_EQ(serial_gpu.tracer()->eventSummary(),
              par_gpu.tracer()->eventSummary());
}

/**
 * The lifted warp cap under sharding: 80 warps/SM (beyond the old
 * 64-warp word) across 4 shards stays bitwise identical to serial —
 * WarpMask-based scoreboard/WGT/LLT state is shard-confined.
 */
TEST(ParallelEngine, MoreThan64WarpsPerSmBitwiseIdentical)
{
    GpuConfig cfg = smallGpu("laws", "sap");
    cfg.numSms = 4;
    cfg.sm.warpsPerSm = 80;
    cfg.sm.warpsPerBlock = 16;
    cfg.sm.jobsPerWarp = 1;
    const Kernel kernel = makeWorkload("NW", 0.05).kernel;

    const StatSet serial = simulate(cfg, kernel).toStatSet();
    GpuConfig par_cfg = cfg;
    par_cfg.shards = 4;
    const StatSet par = simulate(par_cfg, kernel).toStatSet();
    expectBitwiseIdentical(serial, par, "80 warps/SM, 4 shards");
}

// The engine's hot structures get their own targeted checks in
// lsu_structures_test.cpp; this file is end-to-end only.

} // namespace
} // namespace apres
