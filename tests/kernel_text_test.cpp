/**
 * @file
 * Tests for the declarative kernel text format: generator factory,
 * parsing, round-tripping, and simulation of parsed kernels.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/kernel_text.hpp"
#include "sim/gpu.hpp"
#include "sim_error_matchers.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

TEST(KernelText, ParsesMinimalKernel)
{
    const Kernel k = parseKernelText(
        "kernel mini 4\n"
        "gen 0 uniform addr=4096\n"
        "load r0 gen=0\n"
        "alu r1 r0\n");
    EXPECT_EQ(k.name(), "mini");
    EXPECT_EQ(k.tripCount(), 4u);
    EXPECT_EQ(k.numLoads(), 1);
    EXPECT_EQ(k.code().size(), 4u); // load alu branch exit
}

TEST(KernelText, CommentsAndBlankLinesIgnored)
{
    const Kernel k = parseKernelText(
        "# a comment\n"
        "\n"
        "kernel c 2   # trailing comment\n"
        "gen 0 uniform addr=128\n"
        "load r0 gen=0  # another\n");
    EXPECT_EQ(k.tripCount(), 2u);
}

TEST(KernelText, ParsesAllGeneratorKinds)
{
    const char* kinds[] = {
        "uniform addr=4096",
        "window base=0 footprint=8192 iter=128 skew=64 sm=8192",
        "strided base=4096 warp=2048 iter=98304 sm=0",
        "irregular base=0 lines=512 sharewarps=8 shareiters=2 seed=7 lag=2",
        "zipf base=0 lines=96 alpha=1.2 seed=3",
    };
    for (const char* spec : kinds) {
        const AddressGenPtr gen = parseAddressGen(spec);
        ASSERT_NE(gen, nullptr) << spec;
        // The canonical form round-trips to an equivalent generator.
        const AddressGenPtr again = parseAddressGen(gen->serialize());
        for (int w = 0; w < 48; w += 7) {
            for (std::uint64_t i = 0; i < 40; i += 3) {
                const AddrCtx ctx{1, w, i};
                EXPECT_EQ(gen->base(ctx), again->base(ctx)) << spec;
            }
        }
    }
}

TEST(KernelText, GeneratorReuseIsFatal)
{
    // Each generator binds to exactly one memory instruction.
    expectSimError(SimErrorKind::kKernel, "each may be used once", [] {
        parseKernelText("kernel k 1\n"
                        "gen 0 uniform addr=0\n"
                        "load r0 gen=0\n"
                        "store gen=0 src=r0\n");
    });
}

TEST(KernelText, AttributesApplied)
{
    const Kernel k = parseKernelText(
        "kernel attrs 2\n"
        "gen 0 strided base=4096 warp=128 iter=6144\n"
        "gen 1 uniform addr=65536\n"
        "load r0 pc=0x110 gen=0 lanestride=8 lanes=16\n"
        "alu r1 r0 lat=12\n"
        "load r2 gen=1 dep=r1\n");
    EXPECT_EQ(k.at(0).pc, 0x110u);
    EXPECT_EQ(k.at(0).laneStride, 8);
    EXPECT_EQ(k.at(0).activeLanes, 16);
    EXPECT_EQ(k.at(1).latency, 12);
    EXPECT_EQ(k.at(2).src[0], k.at(1).dst); // dep wired to the alu
}

TEST(KernelText, RoundTripPreservesBehaviour)
{
    const Kernel original = parseKernelText(
        "kernel rt 6\n"
        "gen 0 strided base=268435456 warp=4352 iter=208896\n"
        "gen 1 zipf base=536870912 lines=128 alpha=1.0 seed=9\n"
        "gen 2 strided base=805306368 warp=128 iter=6144\n"
        "load r0 gen=0\n"
        "alu r1 r0\n"
        "load r2 gen=1 dep=r1\n"
        "alu r3 r2 lat=8\n"
        "store gen=2 src=r3\n");

    std::ostringstream oss;
    writeKernelText(original, oss);
    const Kernel reparsed = parseKernelText(oss.str());

    ASSERT_EQ(reparsed.code().size(), original.code().size());
    EXPECT_EQ(reparsed.tripCount(), original.tripCount());
    for (std::size_t i = 0; i < original.code().size(); ++i) {
        EXPECT_EQ(reparsed.at(i).op, original.at(i).op) << i;
        EXPECT_EQ(reparsed.at(i).pc, original.at(i).pc) << i;
        EXPECT_EQ(reparsed.at(i).laneStride, original.at(i).laneStride);
    }

    // Identical simulation results.
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    const RunResult a = simulate(cfg, original);
    const RunResult b = simulate(cfg, reparsed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1.demandMisses, b.l1.demandMisses);
}

TEST(KernelText, ErrorsAreFatal)
{
    const auto bad = [](const std::string& text,
                        const std::string& fragment) {
        expectSimError(SimErrorKind::kKernel, fragment,
                       [&] { parseKernelText(text); });
    };
    bad("gen 0 uniform addr=0\n", "before the kernel header");
    bad("kernel k 1\nfrobnicate\n", "unknown directive");
    bad("kernel k 1\ngen 0 nosuchkind a=1\n",
        "unknown address generator kind");
    bad("kernel k 1\ngen 1 uniform addr=0\n", "numbered in order");
    bad("kernel k 1\ngen 0 uniform addr=0\n"
        "load r0 gen=0 dep=r9\n",
        "used before definition");
    bad("kernel k 1\ngen 0 uniform\n", "missing required key");
    bad("", "missing 'kernel NAME TRIPS' header");
    // A header with no instructions must be a typed error, not a
    // Debug-only assert deep in KernelBuilder::build (caught by the
    // coverage CI's Debug run of the kernel-text fuzzer).
    bad("kernel k 1\n", "body is empty");
    bad("kernel k 1\ngen 0 uniform addr=0\n", "body is empty");
    // Attribute ranges the builder would otherwise assert on in Debug
    // builds only: lanes beyond the warp width, non-positive latency.
    bad("kernel k 1\ngen 0 uniform addr=0\n"
        "load r0 gen=0 lanes=33\n",
        "lanes=33 outside");
    bad("kernel k 1\ngen 0 uniform addr=0\n"
        "load r0 gen=0 lanes=0\n",
        "lanes=0 outside");
    bad("kernel k 1\ngen 0 uniform addr=0\n"
        "load r0 gen=0\n"
        "alu r1 r0 lat=0\n",
        "must be a positive cycle count");
}

TEST(KernelText, ErrorsCarryLineNumbers)
{
    // The offending line number is part of the error detail, so a bad
    // multi-hundred-line kernel file is diagnosable from the message.
    expectSimError(SimErrorKind::kKernel, "line 3", [] {
        parseKernelText("kernel k 1\n"
                        "gen 0 uniform addr=0\n"
                        "frobnicate\n");
    });
}

TEST(KernelText, DuplicateExplicitPcIsRejected)
{
    // PCs key the LLT/STR/PT tables; two instructions sharing one
    // would silently alias their table entries.
    expectSimError(SimErrorKind::kKernel, "duplicate pc", [] {
        parseKernelText("kernel k 1\n"
                        "gen 0 uniform addr=0\n"
                        "gen 1 uniform addr=64\n"
                        "load r0 gen=0 pc=0x100\n"
                        "load r1 gen=1 pc=0x100\n");
    });
}

TEST(KernelText, LabelsAndLoopsValidated)
{
    // A loop may only target an already-defined label: that makes an
    // out-of-range branch target unrepresentable in kernel text.
    expectSimError(SimErrorKind::kKernel, "unknown label", [] {
        parseKernelText("kernel k 2\n"
                        "gen 0 uniform addr=0\n"
                        "load r0 gen=0\n"
                        "loop nowhere\n");
    });
    expectSimError(SimErrorKind::kKernel, "duplicate label", [] {
        parseKernelText("kernel k 2\n"
                        "label top\n"
                        "label top\n");
    });

    // The happy path: a labelled loop body parses and records the
    // branch target.
    const Kernel k = parseKernelText("kernel k 3\n"
                                     "gen 0 uniform addr=4096\n"
                                     "label top\n"
                                     "load r0 gen=0\n"
                                     "alu r1 r0\n"
                                     "loop top\n");
    EXPECT_EQ(k.tripCount(), 3u);
}

TEST(KernelText, DivergentBarrierIsRejected)
{
    // A barrier that only part of the block can reach deadlocks real
    // hardware; both textual shapes must be rejected at parse time.
    expectSimError(SimErrorKind::kKernel, "divergent context", [] {
        parseKernelText("kernel k 1\n"
                        "gen 0 uniform addr=0\n"
                        "load r0 gen=0 lanes=8\n"
                        "barrier\n");
    });
    expectSimError(SimErrorKind::kKernel, "partial warps= mask", [] {
        parseKernelText("kernel k 1\n"
                        "gen 0 uniform addr=0\n"
                        "load r0 gen=0\n"
                        "barrier warps=0x3\n");
    });

    // Full-width code followed by a barrier stays legal.
    const Kernel k = parseKernelText("kernel k 1\n"
                                     "gen 0 uniform addr=0\n"
                                     "load r0 gen=0\n"
                                     "barrier\n"
                                     "alu r1 r0\n");
    EXPECT_EQ(k.code().size(), 5u); // load barrier alu branch exit
}

/**
 * Property sweep: every Table IV benchmark kernel serializes to text
 * and parses back into a behaviourally identical kernel.
 */
class WorkloadRoundTrip : public testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRoundTrip, SerializeParseSimulateIdentical)
{
    const Workload wl = makeWorkload(GetParam(), 0.05);
    std::ostringstream oss;
    writeKernelText(wl.kernel, oss);
    const Kernel reparsed = parseKernelText(oss.str());

    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    cfg.maxCycles = 3'000'000;
    const RunResult a = simulate(cfg, wl.kernel);
    const RunResult b = simulate(cfg, reparsed);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1.demandMisses, b.l1.demandMisses);
    EXPECT_EQ(a.traffic.interconnectBytes(), b.traffic.interconnectBytes());
}

INSTANTIATE_TEST_SUITE_P(AllApps, WorkloadRoundTrip,
                         testing::ValuesIn(allWorkloadNames()),
                         [](const auto& info) { return info.param; });

TEST(KernelText, LoadKernelFileMissingIsFatal)
{
    expectSimError(SimErrorKind::kKernel, "cannot open kernel file",
                   [] { loadKernelFile("/nonexistent/path.kt"); });
}

} // namespace
} // namespace apres
