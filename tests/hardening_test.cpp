/**
 * @file
 * Hardened-core tests: the invariant auditor (seeded fault
 * injections must be detected), the forward-progress watchdog, the
 * barrier early-exit regression, and fault-isolated sweeps
 * (error/timeout/skipped rows, retries, --keep-going semantics).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apres/laws.hpp"
#include "apres/sap.hpp"
#include "isa/address_gen.hpp"
#include "isa/kernel.hpp"
#include "sim/gpu.hpp"
#include "sim/policy_registry.hpp"
#include "sim/runner.hpp"
#include "sim_error_matchers.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

GpuConfig
auditedGpu()
{
    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    cfg.scheduler = "laws";
    cfg.prefetcher = "sap";
    cfg.audit = true;
    cfg.auditInterval = 1'000;
    cfg.maxCycles = 2'000'000;
    return cfg;
}

std::shared_ptr<const Kernel>
smallKernel()
{
    return std::make_shared<const Kernel>(makeWorkload("SP", 0.05).kernel);
}

// --------------------------------------------------------------------
// Auditor: clean runs audit clean; injected faults are detected.
// --------------------------------------------------------------------

TEST(Auditor, CleanRunPassesWithAuditsOn)
{
    const auto kernel = smallKernel();
    Gpu gpu(auditedGpu(), *kernel);
    const RunResult r = gpu.run();
    EXPECT_TRUE(r.completed);
    // The audit cadence actually fired; a run that never audits would
    // vacuously "pass".
    EXPECT_GT(gpu.auditPasses(), 0u);
}

TEST(Auditor, CorruptedWgtEntryIsDetected)
{
    const auto kernel = smallKernel();
    Gpu gpu(auditedGpu(), *kernel);
    auto* laws = dynamic_cast<LawsScheduler*>(&gpu.schedulerForTest(0));
    ASSERT_NE(laws, nullptr);

    // Inject a group entry naming a warp the machine does not have
    // (bit 63 with warpsPerSm = 8) and a PC that is not a static load.
    WarpGroupTable::Entry& e = laws->wgtForTest().entryForTest(0);
    e.valid = true;
    e.owner = 0;
    e.pc = 0x9999;
    e.members = WarpMask::ofWord(std::uint64_t{1} << 63);

    expectSimError(SimErrorKind::kInvariant, "invariant audit failed",
                   [&] { gpu.auditNow(); });
}

TEST(Auditor, OversizedSapPageTableIsDetected)
{
    const auto kernel = smallKernel();
    Gpu gpu(auditedGpu(), *kernel);
    auto* sap = dynamic_cast<SapPrefetcher*>(gpu.prefetcherForTest(0));
    ASSERT_NE(sap, nullptr);

    // Grow the PT past the paper's 10-entry bound (Table IV).
    sap->debugOversizePtForTest(4);
    expectSimError(SimErrorKind::kInvariant, "invariant audit failed",
                   [&] { gpu.auditNow(); });
}

TEST(Auditor, CorruptedL1TagArrayIsDetected)
{
    // Smash one entry of the L1's SoA tag array: the same line
    // address planted in two ways of one set is a state no legal
    // access/fill/evict sequence can produce, and the tag-array
    // audit (wired into Sm::auditInvariants) must flag it even if
    // the bogus tag happens to index to that set.
    const auto kernel = smallKernel();
    Gpu gpu(auditedGpu(), *kernel);
    const Addr bogus = Addr{0xdead} * 128;
    gpu.smForTest(0).l1Mutable().corruptTagForTest(0, 0, bogus);
    gpu.smForTest(0).l1Mutable().corruptTagForTest(0, 1, bogus);
    expectSimError(SimErrorKind::kInvariant, "invariant audit failed",
                   [&] { gpu.auditNow(); });
}

TEST(Auditor, SkippedIssueableCycleIsDetected)
{
    // Corrupt the fast-forward ready-scan cache into claiming no warp
    // can issue until far in the future, while warps are in fact
    // issueable right now — the exact bug class the skip-window audit
    // exists to catch.
    const auto kernel = smallKernel();
    Gpu gpu(auditedGpu(), *kernel);
    gpu.smForTest(0).debugForceReadyClean(gpu.now() + 1'000'000);
    expectSimError(SimErrorKind::kInvariant, "invariant audit failed",
                   [&] { gpu.auditNow(); });
}

// --------------------------------------------------------------------
// Watchdog: a machine making no progress dies loudly, with a report.
// --------------------------------------------------------------------

/** A scheduler that never picks: every warp starves. */
class WedgeScheduler final : public Scheduler
{
  public:
    void attach(SmContext&) override {}
    WarpId pick(Cycle, const std::vector<WarpId>&) override
    {
        return kInvalidWarp;
    }
    const char* name() const override { return "wedge"; }
};

void
registerWedgeScheduler()
{
    static const bool once = [] {
        registerScheduler("wedge",
                          [](const GpuConfig&) -> std::unique_ptr<Scheduler> {
                              return std::make_unique<WedgeScheduler>();
                          });
        return true;
    }();
    (void)once;
}

TEST(Watchdog, WedgedSchedulerTriggersDeadlockError)
{
    registerWedgeScheduler();
    const auto kernel = smallKernel();
    GpuConfig cfg = auditedGpu();
    cfg.audit = false;
    cfg.scheduler = "wedge";
    cfg.prefetcher = "none";
    cfg.watchdogCycles = 20'000;
    cfg.maxCycles = 100'000'000;

    try {
        simulate(cfg, *kernel);
        FAIL() << "expected DeadlockError";
    } catch (const SimError& e) {
        EXPECT_EQ(e.kind(), SimErrorKind::kDeadlock);
        const std::string what = e.what();
        EXPECT_NE(what.find("no forward progress"), std::string::npos)
            << what;
        // The per-warp stall report rides along for diagnosis.
        EXPECT_NE(what.find("warp"), std::string::npos) << what;
    }
}

TEST(Watchdog, HealthyRunsAreUntouched)
{
    // A tight-but-sufficient watchdog never fires on a live machine.
    const auto kernel = smallKernel();
    GpuConfig cfg = auditedGpu();
    cfg.audit = false;
    cfg.watchdogCycles = 100'000;
    const RunResult r = simulate(cfg, *kernel);
    EXPECT_TRUE(r.completed);
}

// --------------------------------------------------------------------
// Barrier early-exit regression: a warp finishing while its siblings
// wait at a barrier must lower the release threshold.
// --------------------------------------------------------------------

TEST(Barrier, EarlyExitingWarpReleasesSiblings)
{
    // Warps 0-2 barrier every trip; warp 3 is not a participant, races
    // through all trips and exits while its siblings are parked. The
    // pre-fix arrival-time live count waited for 4 arrivals forever.
    KernelBuilder b("early-exit");
    const int v = b.load(std::make_unique<StridedGen>(
        Addr{0x1000'0000}, std::int64_t{1} << 16, 128));
    b.barrier(/*participant_mask=*/0x7);
    b.alu({v}, 2);
    const Kernel kernel = b.build(/*trip_count=*/10);

    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.sm.warpsPerSm = 4;
    cfg.sm.warpsPerBlock = 4;
    cfg.sm.jobsPerWarp = 1;
    cfg.maxCycles = 2'000'000;
    // A regression deadlocks; make it fail fast and loudly instead of
    // spinning to the cycle cap.
    cfg.watchdogCycles = 500'000;
    const RunResult r = simulate(cfg, kernel);
    EXPECT_TRUE(r.completed);
}

// --------------------------------------------------------------------
// Fault-isolated sweeps: error/timeout/skip rows, retries, keep-going.
// --------------------------------------------------------------------

TEST(Runner, KeepGoingConvertsFailuresToErrorRows)
{
    registerWedgeScheduler();
    const auto kernel = smallKernel();

    GpuConfig ok = auditedGpu();
    ok.audit = false;

    GpuConfig broken = ok;
    broken.scheduler = "gto";
    broken.prefetcher = "sap"; // SAP without LAWS: ConfigError

    GpuConfig wedged = ok;
    wedged.scheduler = "wedge";
    wedged.prefetcher = "none";
    wedged.watchdogCycles = 0;          // nothing stops it...
    wedged.maxCycles = Cycle{1} << 40;  // ...except the job deadline

    RunnerOptions opts;
    opts.threads = 1;
    opts.keepGoing = true;
    opts.jobTimeoutSeconds = 0.25;
    SweepRunner runner(opts);
    runner.submit("ok-job", ok, kernel);
    runner.submit("broken-job", broken, kernel);
    runner.submit("wedged-job", wedged, kernel);

    const std::vector<SweepResult> results = runner.runAll();
    ASSERT_EQ(results.size(), 3u);

    EXPECT_EQ(results[0].result.status, "ok");
    EXPECT_TRUE(results[0].result.completed);

    EXPECT_EQ(results[1].result.status, "error");
    EXPECT_EQ(results[1].result.errorKind, "ConfigError");
    EXPECT_NE(results[1].result.errorDetail.find("LAWS"),
              std::string::npos);

    EXPECT_EQ(results[2].result.status, "timeout");
    EXPECT_EQ(results[2].result.errorKind, "Timeout");
    EXPECT_NE(results[2].result.errorDetail.find("deadline"),
              std::string::npos);

    const std::string summary = failureSummary(results);
    EXPECT_NE(summary.find("2 of 3"), std::string::npos) << summary;
    EXPECT_NE(summary.find("broken-job"), std::string::npos) << summary;
    EXPECT_NE(summary.find("wedged-job"), std::string::npos) << summary;
}

TEST(Runner, FirstFailurePropagatesWithoutKeepGoing)
{
    const auto kernel = smallKernel();
    GpuConfig broken = auditedGpu();
    broken.audit = false;
    broken.scheduler = "gto";
    broken.prefetcher = "sap";

    RunnerOptions opts;
    opts.threads = 1;
    SweepRunner runner(opts);
    runner.submit("broken-job", broken, kernel);
    expectSimError(SimErrorKind::kConfig, "requires the LAWS scheduler",
                   [&] { runner.runAll(); });
}

TEST(Runner, RetriesRerunDeterministicFailures)
{
    registerWedgeScheduler();
    const auto kernel = smallKernel();
    GpuConfig wedged = auditedGpu();
    wedged.audit = false;
    wedged.scheduler = "wedge";
    wedged.prefetcher = "none";
    wedged.watchdogCycles = 5'000;

    RunnerOptions opts;
    opts.threads = 1;
    opts.keepGoing = true;
    opts.retries = 1;
    SweepRunner runner(opts);
    runner.submit("wedged-job", wedged, kernel);

    const std::vector<SweepResult> results = runner.runAll();
    ASSERT_EQ(results.size(), 1u);
    // Deterministic failure: both attempts fail identically and the
    // final row still reports the error.
    EXPECT_EQ(results[0].result.status, "error");
    EXPECT_EQ(results[0].result.errorKind, "DeadlockError");
}

TEST(Runner, TimeoutRowsSurviveRetriesUnderKeepGoing)
{
    // The remaining cell of the timeout x retries x keep-going matrix
    // through this frontend: a job that exceeds its deadline on every
    // attempt still lands as a timeout row (not an exception) when
    // retries are in play.
    registerWedgeScheduler();
    const auto kernel = smallKernel();
    GpuConfig wedged = auditedGpu();
    wedged.audit = false;
    wedged.scheduler = "wedge";
    wedged.prefetcher = "none";
    wedged.watchdogCycles = 0;
    wedged.maxCycles = Cycle{1} << 40;

    RunnerOptions opts;
    opts.threads = 1;
    opts.keepGoing = true;
    opts.retries = 1;
    opts.jobTimeoutSeconds = 0.1;
    SweepRunner runner(opts);
    runner.submit("wedged-job", wedged, kernel);
    const std::vector<SweepResult> results = runner.runAll();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].result.status, "timeout");
    EXPECT_EQ(results[0].result.errorKind, "Timeout");
}

TEST(JobExecutor, CountsEveryAttempt)
{
    registerWedgeScheduler();
    const auto kernel = smallKernel();
    GpuConfig wedged = auditedGpu();
    wedged.audit = false;
    wedged.scheduler = "wedge";
    wedged.prefetcher = "none";
    wedged.watchdogCycles = 5'000;

    SweepJob job;
    job.label = "wedged";
    job.config = wedged;
    job.kernel = kernel;
    const JobExecutor executor(JobExecutionPolicy{/*retries=*/2, 0.0});
    const JobOutcome outcome = executor.execute(job, /*seed=*/1);
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.result.status, "error");
    // 1 try + 2 retries, each counted: the executions() counter is
    // what the service's zero-re-simulation guarantee leans on.
    EXPECT_EQ(executor.executions(), 3u);

    GpuConfig fine = auditedGpu();
    fine.audit = false;
    SweepJob good;
    good.label = "good";
    good.config = fine;
    good.kernel = kernel;
    const JobOutcome ok = executor.execute(good, /*seed=*/1);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.result.status, "ok");
    EXPECT_GT(ok.wallSeconds, 0.0);
    EXPECT_EQ(executor.executions(), 4u);
}

TEST(Runner, ConfigSeedModeMakesResultsPositionIndependent)
{
    // In kUseConfigSeed mode a job's result is a pure function of its
    // configuration — the property the service's content-addressed
    // cache is built on. Run the same config at slot 0 and slot 2 of
    // different batches and require identical stats.
    const auto kernel = smallKernel();
    GpuConfig cfg = auditedGpu();
    cfg.audit = false;

    GpuConfig other = cfg;
    other.sm.l1.sizeBytes = 65536;

    RunnerOptions opts;
    opts.threads = 2;
    opts.seedMode = SeedMode::kUseConfigSeed;

    SweepRunner first(opts);
    first.submit("probe", cfg, kernel);
    first.submit("fill-a", other, kernel);
    const std::vector<SweepResult> a = first.runAll();

    SweepRunner second(opts);
    second.submit("fill-a", other, kernel);
    second.submit("fill-b", other, kernel);
    second.submit("probe", cfg, kernel);
    const std::vector<SweepResult> b = second.runAll();

    const StatSet probe_first = a[0].result.toStatSet();
    const StatSet probe_second = b[2].result.toStatSet();
    EXPECT_EQ(probe_first.entries(), probe_second.entries());
}

// --------------------------------------------------------------------
// Parallel engine: every fault path is shard-count invariant — same
// typed SimError, same detail text, no matter how SMs are sharded.
// --------------------------------------------------------------------

/** Run @p cfg, require a SimError, return (kind, full what() text). */
std::pair<SimErrorKind, std::string>
captureSimError(const GpuConfig& cfg, const Kernel& kernel)
{
    try {
        simulate(cfg, kernel);
    } catch (const SimError& e) {
        return {e.kind(), e.what()};
    }
    ADD_FAILURE() << "expected a SimError, but the run completed";
    return {SimErrorKind::kConfig, ""};
}

TEST(ParallelFaults, WatchdogDeadlockTextIsShardInvariant)
{
    registerWedgeScheduler();
    const auto kernel = smallKernel();
    GpuConfig cfg = auditedGpu();
    cfg.audit = false;
    cfg.numSms = 4;
    cfg.scheduler = "wedge";
    cfg.prefetcher = "none";
    cfg.watchdogCycles = 20'000;
    cfg.maxCycles = 100'000'000;

    const auto [kind, what] = captureSimError(cfg, *kernel);
    EXPECT_EQ(kind, SimErrorKind::kDeadlock);
    EXPECT_NE(what.find("no forward progress"), std::string::npos) << what;

    for (int shards : {2, 3, 4}) {
        GpuConfig par_cfg = cfg;
        par_cfg.shards = shards;
        const auto [par_kind, par_what] = captureSimError(par_cfg, *kernel);
        EXPECT_EQ(par_kind, kind) << "shards=" << shards;
        EXPECT_EQ(par_what, what) << "shards=" << shards;
    }
}

TEST(ParallelFaults, InvariantViolationTextIsShardInvariant)
{
    // An auditor violation seeded in SM 3 — owned by the *last* shard
    // in every sharding below — must produce the identical report when
    // the periodic audit catches it, regardless of shard count: audits
    // fire at the same cycles, on identical machine state.
    const auto kernel = smallKernel();
    GpuConfig cfg = auditedGpu();
    cfg.numSms = 4;

    const auto corruptAndRun = [&](int shards) {
        GpuConfig c = cfg;
        c.shards = shards;
        Gpu gpu(c, *kernel);
        auto* sap = dynamic_cast<SapPrefetcher*>(gpu.prefetcherForTest(3));
        EXPECT_NE(sap, nullptr);
        sap->debugOversizePtForTest(4);
        try {
            gpu.run();
        } catch (const SimError& e) {
            return std::pair<SimErrorKind, std::string>{e.kind(), e.what()};
        }
        ADD_FAILURE() << "expected kInvariant, shards=" << shards;
        return std::pair<SimErrorKind, std::string>{SimErrorKind::kConfig,
                                                    ""};
    };

    const auto [kind, what] = corruptAndRun(1);
    EXPECT_EQ(kind, SimErrorKind::kInvariant);
    EXPECT_NE(what.find("invariant audit failed"), std::string::npos)
        << what;

    for (int shards : {2, 4}) {
        const auto [par_kind, par_what] = corruptAndRun(shards);
        EXPECT_EQ(par_kind, kind) << "shards=" << shards;
        EXPECT_EQ(par_what, what) << "shards=" << shards;
    }
}

TEST(ParallelFaults, InterruptHookFiresAtIdenticalCycles)
{
    // The cooperative-interrupt poll (the sweep runner's job-deadline
    // mechanism) must observe the same simulated cycles under any
    // shard count, so a deterministic hook-thrown abort is also
    // shard-invariant.
    const auto kernel = smallKernel();
    GpuConfig cfg = auditedGpu();
    cfg.audit = false;
    cfg.numSms = 4;

    const auto pollCycles = [&](int shards) {
        GpuConfig c = cfg;
        c.shards = shards;
        Gpu gpu(c, *kernel);
        std::vector<Cycle> polls;
        gpu.setInterruptCheck([&] { polls.push_back(gpu.now()); });
        gpu.run();
        return polls;
    };

    const std::vector<Cycle> serial = pollCycles(1);
    for (int shards : {2, 3, 4})
        EXPECT_EQ(pollCycles(shards), serial) << "shards=" << shards;
}

TEST(ParallelFaults, RunnerTimeoutRowUnderSharding)
{
    // A wedged job must still land as a timeout row when the Gpu under
    // the executor runs the parallel engine: the interrupt hook aborts
    // it cooperatively and the worker threads shut down cleanly.
    registerWedgeScheduler();
    const auto kernel = smallKernel();
    GpuConfig wedged = auditedGpu();
    wedged.audit = false;
    wedged.numSms = 2;
    wedged.shards = 2;
    wedged.scheduler = "wedge";
    wedged.prefetcher = "none";
    wedged.watchdogCycles = 0;
    wedged.maxCycles = Cycle{1} << 40;

    RunnerOptions opts;
    opts.threads = 1;
    opts.keepGoing = true;
    opts.jobTimeoutSeconds = 0.25;
    SweepRunner runner(opts);
    runner.submit("wedged-par-job", wedged, kernel);
    const std::vector<SweepResult> results = runner.runAll();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].result.status, "timeout");
    EXPECT_EQ(results[0].result.errorKind, "Timeout");
    EXPECT_NE(results[0].result.errorDetail.find("deadline"),
              std::string::npos);
}

TEST(Runner, FailureSummaryEmptyOnCleanSweep)
{
    const auto kernel = smallKernel();
    GpuConfig ok = auditedGpu();
    ok.audit = false;
    RunnerOptions opts;
    opts.threads = 2;
    SweepRunner runner(opts);
    runner.submit("a", ok, kernel);
    runner.submit("b", ok, kernel);
    const std::vector<SweepResult> results = runner.runAll();
    EXPECT_EQ(failureSummary(results), "");
    for (const SweepResult& r : results)
        EXPECT_EQ(r.result.status, "ok");
}

} // namespace
} // namespace apres
