/**
 * @file
 * Robustness tests for the serving layer: the deterministic fault
 * injector itself, LRU eviction and journal recovery in the bounded
 * disk cache, the startup scrub, the degradation ladder, and — over a
 * live socket — overload shedding, accept-backoff under fd
 * exhaustion, oversize rejection and queue-wait deadlines.
 *
 * Every test arms FaultInjector and resets it on teardown; the rest
 * of the suite (serve_test.cpp) runs with injection disarmed, which
 * is the observation-purity proof: those bitwise-identity tests pass
 * unmodified with the seam compiled in.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/fault_inject.hpp"
#include "common/json.hpp"
#include "common/json_value.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/serve_config.hpp"
#include "sim_error_matchers.hpp"

namespace apres {
namespace {

namespace fs = std::filesystem;

std::string
scratchDir(const std::string& tag)
{
    const fs::path dir = fs::temp_directory_path() /
        ("apres_robust_test_" + std::to_string(::getpid()) + "_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** Sockets live in /tmp directly: sun_path is only ~108 bytes. */
std::string
socketPath(const std::string& tag)
{
    return (fs::temp_directory_path() /
            ("apres_rb_" + std::to_string(::getpid()) + "_" + tag +
             ".sock"))
        .string();
}

/** A one-job KM run request; tiny scale keeps it fast. */
std::string
kmRunRequest(const std::string& label, double scale = 0.01)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("type", "run");
    json.beginArray("jobs");
    ServeJobSpec job;
    job.label = label;
    job.workload = "KM";
    job.scale = scale;
    writeServeJob(json, job);
    json.endArray();
    json.endObject();
    json.finish();
    return os.str();
}

/** Every test starts and ends with the injector disarmed. */
class FaultInjection : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

using ResultCacheRobustness = FaultInjection;
using ServeOverload = FaultInjection;

// --------------------------------------------------------------------
// The injector itself.
// --------------------------------------------------------------------

TEST_F(FaultInjection, DisabledIsSilentAndCountsNothing)
{
    EXPECT_FALSE(FaultInjector::instance().enabled());
    EXPECT_EQ(faultInjectAt("cache.write"), 0);
    EXPECT_EQ(FaultInjector::instance().calls("cache.write"), 0u);
}

TEST_F(FaultInjection, OccurrenceWindowsAreDeterministic)
{
    FaultInjector::instance().configure(
        "t.site=enospc@2;t.other=eio@3+");
    EXPECT_EQ(faultInjectAt("t.site"), 0);       // call 1
    EXPECT_EQ(faultInjectAt("t.site"), ENOSPC);  // call 2: fires
    EXPECT_EQ(faultInjectAt("t.site"), 0);       // call 3
    EXPECT_EQ(faultInjectAt("t.other"), 0);
    EXPECT_EQ(faultInjectAt("t.other"), 0);
    EXPECT_EQ(faultInjectAt("t.other"), EIO);    // 3+ fires forever
    EXPECT_EQ(faultInjectAt("t.other"), EIO);
    EXPECT_EQ(FaultInjector::instance().calls("t.site"), 3u);
    EXPECT_EQ(FaultInjector::instance().fired("t.site"), 1u);
    EXPECT_EQ(FaultInjector::instance().fired("t.other"), 2u);
}

TEST_F(FaultInjection, ThrowActionThrows)
{
    FaultInjector::instance().configure("t.throw=throw");
    EXPECT_THROW(faultInjectAt("t.throw"), std::runtime_error);
}

TEST_F(FaultInjection, MalformedSpecsAreRejected)
{
    expectSimError(SimErrorKind::kConfig, "fault injection", [] {
        FaultInjector::instance().configure("nonsense");
    });
    expectSimError(SimErrorKind::kConfig, "badaction", [] {
        FaultInjector::instance().configure("a.b=badaction");
    });
    expectSimError(SimErrorKind::kConfig, "occurrence", [] {
        FaultInjector::instance().configure("a.b=eio@0");
    });
    expectSimError(SimErrorKind::kConfig, "occurrence", [] {
        FaultInjector::instance().configure("a.b=eio@5-2");
    });
    EXPECT_FALSE(FaultInjector::instance().enabled());
}

// --------------------------------------------------------------------
// Bounded disk tier: LRU eviction, journal recovery, scrub.
// --------------------------------------------------------------------

TEST_F(ResultCacheRobustness, EvictsLeastRecentlyUsedAtEntryCap)
{
    const std::string dir = scratchDir("lru_entries");
    ResultCache cache(dir, CacheLimits{0, 2});
    cache.store("aaaa", "{\"n\": 1}");
    cache.store("bbbb", "{\"n\": 2}");
    cache.store("cccc", "{\"n\": 3}"); // evicts aaaa (oldest)

    EXPECT_EQ(cache.diskEntries(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "aaaa.json"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "bbbb.json"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "cccc.json"));
    // The memory tier is unbounded: the evicted key still answers.
    EXPECT_TRUE(cache.lookup("aaaa").has_value());
}

TEST_F(ResultCacheRobustness, LookupRefreshesRecency)
{
    const std::string dir = scratchDir("lru_touch");
    ResultCache cache(dir, CacheLimits{0, 2});
    cache.store("aaaa", "{\"n\": 1}");
    cache.store("bbbb", "{\"n\": 2}");
    ASSERT_TRUE(cache.lookup("aaaa").has_value()); // aaaa now newest
    cache.store("cccc", "{\"n\": 3}");             // evicts bbbb

    EXPECT_FALSE(fs::exists(fs::path(dir) / "bbbb.json"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "aaaa.json"));
}

TEST_F(ResultCacheRobustness, EvictsByBytesAndCountsReclaim)
{
    const std::string dir = scratchDir("lru_bytes");
    std::string doc = "{\"pad\": \"" + std::string(89, 'x') + "\"}";
    ASSERT_EQ(doc.size(), 100u);
    ResultCache cache(dir, CacheLimits{250, 0});
    cache.store("aaaa", doc);
    cache.store("bbbb", doc);
    cache.store("cccc", doc); // 300 bytes > 250: evicts aaaa

    EXPECT_EQ(cache.diskEntries(), 2u);
    EXPECT_EQ(cache.diskBytes(), 200u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().evictedBytes, 100u);
}

TEST_F(ResultCacheRobustness, RecencySurvivesRestartViaJournal)
{
    const std::string dir = scratchDir("lru_journal");
    {
        ResultCache cache(dir);
        cache.store("aaaa", "{\"n\": 1}");
        cache.store("bbbb", "{\"n\": 2}");
        cache.store("cccc", "{\"n\": 3}");
        ASSERT_TRUE(cache.lookup("aaaa").has_value()); // aaaa newest
    } // dtor persists journal.lru

    ASSERT_TRUE(fs::exists(fs::path(dir) / "journal.lru"));
    // Reopen with a cap of 2: the scrub must evict by journaled
    // recency — bbbb is the oldest, not aaaa.
    ResultCache warm(dir, CacheLimits{0, 2});
    EXPECT_EQ(warm.diskEntries(), 2u);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "bbbb.json"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "aaaa.json"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "cccc.json"));
}

TEST_F(ResultCacheRobustness, ScrubRepairsCrashArtifacts)
{
    const std::string dir = scratchDir("scrub");
    // A crashed writer's temp file, a truncated entry and an empty
    // entry; plus one healthy survivor.
    std::ofstream(fs::path(dir) / "aaaa.json.tmp.12345") << "{\"n\":";
    std::ofstream(fs::path(dir) / "bbbb.json") << "{\"truncated\": ";
    std::ofstream(fs::path(dir) / "cccc.json");
    std::ofstream(fs::path(dir) / "dddd.json") << "{\"n\": 4}";

    ResultCache cache(dir);
    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.scrubOrphanTmps, 1u);
    EXPECT_EQ(stats.scrubCorruptEntries, 2u);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "aaaa.json.tmp.12345"));
    EXPECT_FALSE(fs::exists(fs::path(dir) / "bbbb.json"));
    EXPECT_FALSE(fs::exists(fs::path(dir) / "cccc.json"));
    EXPECT_EQ(cache.diskEntries(), 1u);
    EXPECT_TRUE(cache.lookup("dddd").has_value());
}

// --------------------------------------------------------------------
// Write-path failures and the degradation ladder.
// --------------------------------------------------------------------

TEST_F(ResultCacheRobustness, EnospcOnWriteDegradesToReadOnly)
{
    const std::string dir = scratchDir("degrade_write");
    {
        ResultCache seed(dir);
        seed.store("aaaa", "{\"n\": 1}");
    }
    ResultCache cache(dir, CacheLimits{});
    ASSERT_EQ(cache.diskMode(), CacheDiskMode::kReadWrite);

    FaultInjector::instance().configure("cache.write=enospc");
    cache.store("bbbb", "{\"n\": 2}");
    EXPECT_EQ(cache.diskMode(), CacheDiskMode::kReadOnly);
    EXPECT_EQ(cache.stats().writeFailures, 1u);
    EXPECT_EQ(cache.stats().degradations, 1u);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "bbbb.json"));
    // Read-only: existing disk entries still serve, new stores stay
    // memory-only and are counted.
    FaultInjector::instance().reset();
    EXPECT_TRUE(cache.lookup("aaaa").has_value());
    EXPECT_TRUE(cache.lookup("bbbb").has_value()); // memory tier
    cache.store("cccc", "{\"n\": 3}");
    EXPECT_EQ(cache.stats().storesSkippedDegraded, 1u);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "cccc.json"));
}

TEST_F(ResultCacheRobustness, EioOnReadDegradesToMemoryOnly)
{
    const std::string dir = scratchDir("degrade_read");
    {
        ResultCache seed(dir);
        seed.store("aaaa", "{\"n\": 1}");
    }
    ResultCache cache(dir); // entry on disk, not in this memory tier
    FaultInjector::instance().configure("cache.read=eio");
    EXPECT_FALSE(cache.lookup("aaaa").has_value());
    EXPECT_EQ(cache.diskMode(), CacheDiskMode::kMemoryOnly);
    EXPECT_EQ(cache.stats().degradations, 1u);
    // Memory-only is terminal: nothing persists, nothing reads disk.
    FaultInjector::instance().reset();
    cache.store("bbbb", "{\"n\": 2}");
    EXPECT_FALSE(fs::exists(fs::path(dir) / "bbbb.json"));
}

TEST_F(ResultCacheRobustness, FsyncAndRenameFailuresAreCounted)
{
    {
        const std::string dir = scratchDir("fsync_fail");
        ResultCache cache(dir);
        FaultInjector::instance().configure("cache.fsync=eio@1");
        cache.store("aaaa", "{\"n\": 1}");
        EXPECT_EQ(cache.stats().fsyncFailures, 1u);
        EXPECT_EQ(cache.diskMode(), CacheDiskMode::kReadOnly);
        EXPECT_FALSE(fs::exists(fs::path(dir) / "aaaa.json"));
        // No half-written temp file survives a failed publish.
        std::size_t files = 0;
        for (const auto& e : fs::directory_iterator(dir)) {
            (void)e;
            ++files;
        }
        EXPECT_EQ(files, 0u);
    }
    FaultInjector::instance().reset();
    {
        const std::string dir = scratchDir("rename_fail");
        ResultCache cache(dir);
        FaultInjector::instance().configure("cache.rename=eio@1");
        cache.store("aaaa", "{\"n\": 1}");
        EXPECT_EQ(cache.stats().renameFailures, 1u);
        EXPECT_FALSE(fs::exists(fs::path(dir) / "aaaa.json"));
        EXPECT_TRUE(cache.lookup("aaaa").has_value()); // memory tier
    }
}

// --------------------------------------------------------------------
// serve.* config registry.
// --------------------------------------------------------------------

TEST(ServeConfig, RoundTripsAndRejectsGarbage)
{
    ServeOptions opts;
    ServeConfigRegistry registry(opts);
    registry.set("serve.queueDepth", "32");
    registry.set("serve.cacheMaxBytes", "1048576");
    EXPECT_EQ(opts.queueDepth, 32);
    EXPECT_EQ(opts.cacheMaxBytes, 1048576u);
    EXPECT_EQ(registry.get("serve.queueDepth"), "32");
    expectSimError(SimErrorKind::kConfig, "serve.queueDepth",
                   [&] { registry.set("serve.queueDepth", "0"); });
    expectSimError(SimErrorKind::kConfig, "serve.queueDepth",
                   [&] { registry.set("serve.queueDepth", "soon"); });
    expectSimError(SimErrorKind::kConfig, "serve.nope",
                   [&] { registry.set("serve.nope", "1"); });
    EXPECT_EQ(opts.queueDepth, 32); // untouched by failed sets
    EXPECT_EQ(registry.keys().size(), 12u);
}

// --------------------------------------------------------------------
// Live-socket overload behavior.
// --------------------------------------------------------------------

/** Parse a response and return its "type". */
std::string
responseType(const std::string& response)
{
    return JsonValue::parse(response).at("type").asString();
}

TEST_F(ServeOverload, FullQueueShedsTypedAndRetrySucceeds)
{
    // One dispatcher stuck on a deterministically slow job (250 ms),
    // queue depth 1: a burst of 6 must shed at least one connection
    // with a typed overloaded document, and every shed client that
    // retries with backoff must eventually be served.
    FaultInjector::instance().configure("job.execute=sleep:250");
    ServeOptions opts;
    opts.socketPath = socketPath("overload");
    opts.queueDepth = 1;
    opts.dispatchThreads = 1;
    opts.threads = 1;
    opts.retryAfterMs = 50;
    ServeDaemon daemon(opts);
    daemon.start();

    const std::string request = kmRunRequest("burst");
    std::atomic<int> overloaded{0};
    std::atomic<int> servedFirstTry{0};
    std::vector<std::thread> clients;
    for (int i = 0; i < 6; ++i) {
        clients.emplace_back([&] {
            const std::string response =
                serveRoundTrip(opts.socketPath, request);
            if (responseType(response) == "overloaded") {
                const JsonValue doc = JsonValue::parse(response);
                EXPECT_EQ(doc.at("reason").asString(), "queueFull");
                EXPECT_GE(doc.at("retryAfterMs").asUint64(), 50u);
                ++overloaded;
            } else {
                EXPECT_EQ(responseType(response), "result");
                ++servedFirstTry;
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    EXPECT_GE(overloaded.load(), 1);
    EXPECT_GE(servedFirstTry.load(), 1);
    EXPECT_GE(daemon.loadStats().shedQueueFull, 1u);

    // The well-behaved client rides out the same storm with retries.
    ServeRetryPolicy policy;
    policy.budget = 20;
    policy.baseMs = 25;
    policy.seed = 42;
    int attempts = 0;
    const std::string response = serveRoundTripWithRetry(
        opts.socketPath, request, policy, &attempts);
    EXPECT_EQ(responseType(response), "result");
    EXPECT_GE(attempts, 1);
    daemon.stop();
}

TEST_F(ServeOverload, AcceptBacksOffThroughFdExhaustion)
{
    // The first three accept() calls fail with injected EMFILE. The
    // pending connection must survive the backoff episode and be
    // served once descriptors "free up" — no crash, no shed, and the
    // backoff is counted instead of log-spammed.
    FaultInjector::instance().configure("socket.accept=emfile@1-3");
    ServeOptions opts;
    opts.socketPath = socketPath("emfile");
    ServeDaemon daemon(opts);
    daemon.start();

    const std::string response =
        serveRoundTrip(opts.socketPath, "{\"type\": \"ping\"}");
    EXPECT_EQ(responseType(response), "pong");
    EXPECT_GE(daemon.loadStats().acceptBackoffs, 3u);
    EXPECT_EQ(FaultInjector::instance().fired("socket.accept"), 3u);
    daemon.stop();
}

TEST_F(ServeOverload, OversizeRequestGetsTypedReject)
{
    ServeOptions opts;
    opts.socketPath = socketPath("oversize");
    opts.maxRequestBytes = 256;
    ServeDaemon daemon(opts);
    daemon.start();

    std::string request = "{\"type\": \"ping\", \"pad\": \"";
    request += std::string(512, 'x');
    request += "\"}";
    const std::string response =
        serveRoundTrip(opts.socketPath, request);
    const JsonValue doc = JsonValue::parse(response);
    EXPECT_EQ(doc.at("type").asString(), "error");
    EXPECT_EQ(doc.at("kind").asString(), "RequestTooLarge");
    EXPECT_EQ(daemon.loadStats().rejectedOversize, 1u);

    // A request under the cap still works on the same daemon.
    EXPECT_EQ(responseType(serveRoundTrip(opts.socketPath,
                                          "{\"type\": \"ping\"}")),
              "pong");
    daemon.stop();
}

TEST_F(ServeOverload, QueueWaitDeadlineSheds)
{
    // One dispatcher pinned on a 400 ms job and a 50 ms queue-wait
    // deadline: a request that sat behind it must be shed with reason
    // "deadline", never half-served.
    FaultInjector::instance().configure("job.execute=sleep:400@1");
    ServeOptions opts;
    opts.socketPath = socketPath("deadline");
    opts.queueDepth = 8;
    opts.dispatchThreads = 1;
    opts.threads = 1;
    opts.requestDeadlineMs = 50;
    ServeDaemon daemon(opts);
    daemon.start();

    std::thread slow([&] {
        serveRoundTrip(opts.socketPath, kmRunRequest("slow"));
    });
    // Let the slow job reach the dispatcher before queueing behind it.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::string response =
        serveRoundTrip(opts.socketPath, "{\"type\": \"ping\"}");
    slow.join();
    const JsonValue doc = JsonValue::parse(response);
    EXPECT_EQ(doc.at("type").asString(), "overloaded");
    EXPECT_EQ(doc.at("reason").asString(), "deadline");
    EXPECT_EQ(daemon.loadStats().shedDeadline, 1u);
    daemon.stop();
}

TEST_F(ServeOverload, StatsResponseCarriesRobustnessCounters)
{
    const std::string dir = scratchDir("stats_counters");
    ServeOptions opts;
    opts.socketPath = socketPath("stats");
    opts.cacheDir = dir;
    opts.cacheMaxBytes = 1 << 20;
    ServeDaemon daemon(opts);
    const std::string response =
        daemon.handleRequest("{\"type\": \"stats\"}");
    const JsonValue doc = JsonValue::parse(response);
    const JsonValue& cache = doc.at("cache");
    EXPECT_EQ(cache.at("diskMode").asString(), "readWrite");
    EXPECT_EQ(cache.at("maxBytes").asUint64(), 1u << 20);
    EXPECT_EQ(cache.at("evictions").asUint64(), 0u);
    const JsonValue& server = doc.at("server");
    EXPECT_EQ(server.at("queueDepth").asUint64(), 16u);
    EXPECT_EQ(server.at("shedQueueFull").asUint64(), 0u);
}

} // namespace
} // namespace apres
