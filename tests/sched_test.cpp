/**
 * @file
 * Unit tests for the baseline warp schedulers: LRR, GTO, CCWS, MASCAR
 * and the PA two-level scheduler.
 */

#include <gtest/gtest.h>

#include "fake_sm.hpp"
#include "sched/ccws.hpp"
#include "sched/gto.hpp"
#include "sched/lrr.hpp"
#include "sched/mascar.hpp"
#include "sched/pa_twolevel.hpp"

namespace apres {
namespace {

TEST(Lrr, RoundRobinOrder)
{
    FakeSm sm(4);
    LrrScheduler lrr;
    lrr.attach(sm);
    const std::vector<WarpId> ready = {0, 1, 2, 3};
    EXPECT_EQ(lrr.pick(0, ready), 0);
    EXPECT_EQ(lrr.pick(1, ready), 1);
    EXPECT_EQ(lrr.pick(2, ready), 2);
    EXPECT_EQ(lrr.pick(3, ready), 3);
    EXPECT_EQ(lrr.pick(4, ready), 0); // wraps
}

TEST(Lrr, SkipsUnreadyWarps)
{
    FakeSm sm(4);
    LrrScheduler lrr;
    lrr.attach(sm);
    EXPECT_EQ(lrr.pick(0, {0, 2}), 0);
    EXPECT_EQ(lrr.pick(1, {0, 2}), 2);
    EXPECT_EQ(lrr.pick(2, {1, 3}), 3);
}

TEST(Lrr, EmptyReadyReturnsInvalid)
{
    FakeSm sm(4);
    LrrScheduler lrr;
    lrr.attach(sm);
    EXPECT_EQ(lrr.pick(0, {}), kInvalidWarp);
}

TEST(Gto, GreedyUntilStall)
{
    FakeSm sm(4);
    GtoScheduler gto;
    gto.attach(sm);
    EXPECT_EQ(gto.pick(0, {0, 1, 2, 3}), 0);
    EXPECT_EQ(gto.pick(1, {0, 1, 2, 3}), 0); // stays greedy
    EXPECT_EQ(gto.pick(2, {1, 3}), 1);       // 0 stalled: oldest ready
    EXPECT_EQ(gto.pick(3, {1, 3}), 1);       // new greedy warp
}

TEST(Gto, OldestByAgeStampNotId)
{
    FakeSm sm(4);
    // Warp 3 is the oldest block (smallest age stamp).
    sm.warp(0).ageStamp = 10;
    sm.warp(1).ageStamp = 9;
    sm.warp(2).ageStamp = 8;
    sm.warp(3).ageStamp = 1;
    GtoScheduler gto;
    gto.attach(sm);
    EXPECT_EQ(gto.pick(0, {0, 1, 2, 3}), 3);
}

TEST(Gto, ForgetsFinishedGreedyWarp)
{
    FakeSm sm(4);
    GtoScheduler gto;
    gto.attach(sm);
    EXPECT_EQ(gto.pick(0, {2, 3}), 2);
    gto.notifyWarpFinished(2);
    EXPECT_EQ(gto.pick(1, {3}), 3);
}

LoadAccessInfo
missAt(WarpId warp, Addr line)
{
    LoadAccessInfo info;
    info.warp = warp;
    info.baseLineAddr = line;
    info.hit = false;
    return info;
}

TEST(Ccws, NoThrottleWithoutLostLocality)
{
    FakeSm sm(8);
    CcwsScheduler ccws;
    ccws.attach(sm);
    EXPECT_EQ(ccws.activeLimit(), 8);
    EXPECT_EQ(ccws.pick(0, {0, 1, 2}), 0);
}

TEST(Ccws, VtaHitRaisesScoreAndThrottles)
{
    FakeSm sm(48);
    CcwsConfig cfg;
    cfg.scoreBonus = 96;
    cfg.scoreCap = 288;
    cfg.throttleScale = 48;
    CcwsScheduler ccws(cfg);
    ccws.attach(sm);

    // Evict a line touched by warp 5, then let warp 5 miss on it.
    Cache& l1 = sm.l1Mutable();
    MemRequest req;
    req.lineAddr = 0x1000;
    req.warp = 5;
    l1.access(req);
    l1.fill(0x1000);
    // Overflow the set so 0x1000 is evicted (2 sets, 8 ways).
    for (int i = 1; i <= 8; ++i) {
        MemRequest r2;
        r2.lineAddr = 0x1000 + static_cast<Addr>(i) * 2 * 128;
        r2.warp = 0;
        l1.access(r2);
        l1.fill(r2.lineAddr);
    }
    EXPECT_FALSE(l1.contains(0x1000));

    ccws.notifyAccessResult(missAt(5, 0x1000));
    EXPECT_GT(ccws.totalScore(), 0);
    EXPECT_EQ(ccws.lostLocalityEvents(), 1u);
    EXPECT_LT(ccws.activeLimit(), 48);
}

TEST(Ccws, ScoresDecayOverTime)
{
    FakeSm sm(48);
    CcwsConfig cfg;
    cfg.decayPeriod = 4;
    CcwsScheduler ccws(cfg);
    ccws.attach(sm);

    Cache& l1 = sm.l1Mutable();
    MemRequest req;
    req.lineAddr = 0x1000;
    req.warp = 3;
    l1.access(req);
    l1.fill(0x1000);
    for (int i = 1; i <= 8; ++i) {
        MemRequest r2;
        r2.lineAddr = 0x1000 + static_cast<Addr>(i) * 2 * 128;
        l1.access(r2);
        l1.fill(r2.lineAddr);
    }
    ccws.notifyAccessResult(missAt(3, 0x1000));
    const auto before = ccws.totalScore();
    ASSERT_GT(before, 0);
    // Decay happens inside pick().
    ccws.pick(100000, {0});
    EXPECT_LT(ccws.totalScore(), before);
}

TEST(Ccws, ThrottledWarpsAreNotPicked)
{
    FakeSm sm(8);
    CcwsConfig cfg;
    cfg.minActiveWarps = 2;
    cfg.scoreBonus = 1000;
    cfg.scoreCap = 100000;
    cfg.throttleScale = 100; // one event throttles 10 slots
    CcwsScheduler ccws(cfg);
    ccws.attach(sm);

    Cache& l1 = sm.l1Mutable();
    MemRequest req;
    req.lineAddr = 0x2000;
    req.warp = 0;
    l1.access(req);
    l1.fill(0x2000);
    for (int i = 1; i <= 8; ++i) {
        MemRequest r2;
        r2.lineAddr = 0x2000 + static_cast<Addr>(i) * 2 * 128;
        l1.access(r2);
        l1.fill(r2.lineAddr);
    }
    ccws.notifyAccessResult(missAt(0, 0x2000));
    EXPECT_EQ(ccws.activeLimit(), 2);
    // Only the two oldest warps (age stamps 1 and 2 = warps 0, 1) are
    // eligible.
    EXPECT_EQ(ccws.pick(0, {2, 3, 4}), kInvalidWarp);
    EXPECT_EQ(ccws.pick(1, {1, 2, 3}), 1);
}

TEST(Mascar, GtoLikeWhenUnsaturated)
{
    FakeSm sm(8);
    MascarScheduler mascar;
    mascar.attach(sm);
    EXPECT_FALSE(mascar.saturated());
    EXPECT_EQ(mascar.pick(0, {0, 1, 2}), 0);
    EXPECT_EQ(mascar.pick(1, {0, 1, 2}), 0);
}

TEST(Mascar, SaturationRestrictsMemoryIssue)
{
    FakeSm sm(8);
    MascarScheduler mascar;
    mascar.attach(sm);
    // Saturate the L1 MSHRs (8 entries in the fake config).
    Cache& l1 = sm.l1Mutable();
    for (int i = 0; i < 8; ++i) {
        MemRequest req;
        req.lineAddr = static_cast<Addr>(i) * 128;
        l1.access(req);
    }
    sm.setNextIsMemory(0, true);
    sm.setNextIsMemory(1, true);
    sm.setNextIsMemory(2, false);

    // Warp 0 becomes the owner (oldest with memory next).
    EXPECT_EQ(mascar.pick(0, {0, 1, 2}), 0);
    EXPECT_TRUE(mascar.saturated());
    // Without the owner ready, compute-only warps may issue.
    EXPECT_EQ(mascar.pick(1, {1, 2}), 2);
    // Only memory warps ready, none the owner: stall.
    EXPECT_EQ(mascar.pick(2, {1}), kInvalidWarp);
}

TEST(Mascar, HysteresisExitsSaturation)
{
    FakeSm sm(8);
    MascarScheduler mascar;
    mascar.attach(sm);
    Cache& l1 = sm.l1Mutable();
    for (int i = 0; i < 8; ++i) {
        MemRequest req;
        req.lineAddr = static_cast<Addr>(i) * 128;
        l1.access(req);
    }
    mascar.pick(0, {0});
    EXPECT_TRUE(mascar.saturated());
    // Drain the MSHRs below the low watermark.
    for (int i = 0; i < 8; ++i)
        l1.fill(static_cast<Addr>(i) * 128);
    mascar.pick(1, {0});
    EXPECT_FALSE(mascar.saturated());
}

TEST(PaTwoLevel, PrefersActiveGroup)
{
    FakeSm sm(16);
    PaScheduler pa({.groupSize = 8});
    pa.attach(sm);
    // Warps 0-7 are group 0; 8-15 group 1.
    EXPECT_EQ(pa.pick(0, {0, 1, 8, 9}), 0);
    EXPECT_EQ(pa.pick(1, {0, 1, 8, 9}), 1);
    EXPECT_EQ(pa.activeGroup(), 0);
}

TEST(PaTwoLevel, SwitchesGroupWhenActiveStalls)
{
    FakeSm sm(16);
    PaScheduler pa({.groupSize = 8});
    pa.attach(sm);
    EXPECT_EQ(pa.pick(0, {0, 8}), 0);
    // Group 0 fully stalled: switch to group 1.
    EXPECT_EQ(pa.pick(1, {8, 9}), 8);
    EXPECT_EQ(pa.activeGroup(), 1);
    // Round-robin continues inside the new group.
    EXPECT_EQ(pa.pick(2, {8, 9}), 9);
}

TEST(PaTwoLevel, RoundRobinWrapsInGroup)
{
    FakeSm sm(16);
    PaScheduler pa({.groupSize = 8});
    pa.attach(sm);
    EXPECT_EQ(pa.pick(0, {5, 6}), 5);
    EXPECT_EQ(pa.pick(1, {5, 6}), 6);
    EXPECT_EQ(pa.pick(2, {5, 6}), 5);
}

} // namespace
} // namespace apres
