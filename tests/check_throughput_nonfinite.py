#!/usr/bin/env python3
"""Regression test for scripts/check_throughput.py.

Non-finite doubles serialize as tagged string sentinels ("NaN",
"Infinity", "-Infinity") since the JSON-writer fix; the gate script
must fail such scenarios with a clear message instead of crashing on a
str/float comparison, and must keep passing healthy numbers.

usage: check_throughput_nonfinite.py PATH_TO_CHECK_THROUGHPUT
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def run_gate(script, results, baseline):
    with tempfile.TemporaryDirectory() as tmp:
        results_path = Path(tmp) / "results.json"
        baseline_path = Path(tmp) / "baseline.json"
        results_path.write_text(json.dumps(results))
        baseline_path.write_text(json.dumps(baseline))
        return subprocess.run(
            [sys.executable, script, str(results_path), str(baseline_path)],
            capture_output=True, text=True)


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    script = sys.argv[1]
    baseline = {"scenarios": {"small": 1000.0, "large": 2000.0}}

    # Healthy numbers pass.
    ok = run_gate(script, {"scenarios": [
        {"name": "small", "ffCyclesPerSec": 990.0, "speedup": 3.0,
         "statsIdentical": True},
        {"name": "large", "ffCyclesPerSec": 2500.0, "speedup": 4.0,
         "statsIdentical": True},
    ]}, baseline)
    if ok.returncode != 0:
        print("FAIL: healthy results were rejected:\n" + ok.stdout)
        return 1

    # A NaN sentinel fails loudly, without a traceback.
    nan = run_gate(script, {"scenarios": [
        {"name": "small", "ffCyclesPerSec": "NaN", "speedup": "NaN",
         "statsIdentical": True},
        {"name": "large", "ffCyclesPerSec": 2500.0, "speedup": 4.0,
         "statsIdentical": True},
    ]}, baseline)
    if nan.returncode != 1:
        print(f"FAIL: NaN sentinel exited {nan.returncode}, wanted 1:\n"
              + nan.stdout + nan.stderr)
        return 1
    if "Traceback" in nan.stderr:
        print("FAIL: NaN sentinel crashed the gate:\n" + nan.stderr)
        return 1
    if "non-finite" not in nan.stdout:
        print("FAIL: NaN failure message is unclear:\n" + nan.stdout)
        return 1

    # An Infinity speedup next to a healthy throughput must not crash
    # the report formatting either.
    inf = run_gate(script, {"scenarios": [
        {"name": "small", "ffCyclesPerSec": 990.0, "speedup": "Infinity",
         "statsIdentical": True},
        {"name": "large", "ffCyclesPerSec": 2500.0, "speedup": 4.0,
         "statsIdentical": True},
    ]}, baseline)
    if inf.returncode != 0 or "Traceback" in inf.stderr:
        print("FAIL: Infinity speedup broke the gate:\n"
              + inf.stdout + inf.stderr)
        return 1

    print("ok: non-finite sentinels are rejected gracefully")
    return 0


if __name__ == "__main__":
    sys.exit(main())
