/**
 * @file
 * Analytic validation: simple kernels whose timing has a closed form.
 * These pin the simulator's first-order behaviour — issue bandwidth,
 * dependency latency, memory latency, DRAM bandwidth, hit latency — to
 * the configured constants, so regressions in the timing model fail
 * loudly instead of just shifting benchmark numbers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/sm.hpp"
#include "mem/memory_system.hpp"
#include "sched/lrr.hpp"
#include "sim/gpu.hpp"

namespace apres {
namespace {

/** Independent single-cycle ALU ops: dst is never read. */
Kernel
independentAluKernel(int per_iter, std::uint64_t trips)
{
    KernelBuilder b("alu");
    for (int i = 0; i < per_iter; ++i)
        b.alu({}, 1);
    return b.build(trips);
}

MemSystemConfig
memCfg()
{
    MemSystemConfig cfg;
    cfg.numPartitions = 2;
    cfg.l2HitLatency = 50;
    cfg.dram.baseLatency = 200;
    cfg.dram.serviceInterval = 4;
    return cfg;
}

Cycle
run(Sm& sm, MemorySystem& mem)
{
    Cycle now = 0;
    while (!sm.done() && now < 10'000'000) {
        mem.tick(now);
        sm.tick(now);
        ++now;
    }
    return now;
}

TEST(Validation, IssueBandwidthIsOneInstructionPerCycle)
{
    // 8 warps of independent ALU work saturate the single issue slot:
    // cycles ~= total instructions.
    const Kernel k = independentAluKernel(8, 50);
    MemorySystem mem(memCfg());
    LrrScheduler sched;
    SmConfig sc;
    sc.warpsPerSm = 8;
    sc.warpsPerBlock = 8;
    sc.jobsPerWarp = 1;
    Sm sm(0, sc, k, sched, nullptr, mem);
    const Cycle cycles = run(sm, mem);
    const auto instructions = sm.stats().issuedInstructions;
    EXPECT_GE(cycles, instructions);
    EXPECT_LE(cycles, instructions + 32); // warm-up/drain slack
}

TEST(Validation, DependencyChainCostsItsLatency)
{
    // One warp, one dependent ALU chain: every link costs the full
    // 8-cycle writeback latency.
    const int chain = 40;
    KernelBuilder b("chain");
    b.alu({}, chain, 8);
    const Kernel k = b.build(1);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    SmConfig sc;
    sc.warpsPerSm = 1;
    sc.warpsPerBlock = 1;
    sc.jobsPerWarp = 1;
    Sm sm(0, sc, k, sched, nullptr, mem);
    const Cycle cycles = run(sm, mem);
    EXPECT_GE(cycles, static_cast<Cycle>(8 * (chain - 1)));
    EXPECT_LE(cycles, static_cast<Cycle>(8 * chain + 32));
}

TEST(Validation, ColdMissCostsDramLatency)
{
    // One warp, one load, one dependent consumer: the run cannot beat
    // the DRAM latency and should not exceed it by much.
    KernelBuilder b("miss");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    const Kernel k = b.build(1);

    const MemSystemConfig mc = memCfg();
    MemorySystem mem(mc);
    LrrScheduler sched;
    SmConfig sc;
    sc.warpsPerSm = 1;
    sc.warpsPerBlock = 1;
    sc.jobsPerWarp = 1;
    Sm sm(0, sc, k, sched, nullptr, mem);
    const Cycle cycles = run(sm, mem);
    EXPECT_GE(cycles, mc.dram.baseLatency);
    EXPECT_LE(cycles, mc.dram.baseLatency + 64);
}

TEST(Validation, L1HitCostsHitLatency)
{
    // After the cold miss, each iteration costs the L1 hit latency
    // plus the dependent ALU, not a memory round trip.
    KernelBuilder b("hits");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    const std::uint64_t trips = 50;
    const Kernel k = b.build(trips);

    const MemSystemConfig mc = memCfg();
    MemorySystem mem(mc);
    LrrScheduler sched;
    SmConfig sc;
    sc.warpsPerSm = 1;
    sc.warpsPerBlock = 1;
    sc.jobsPerWarp = 1;
    sc.lsu.l1HitLatency = 20;
    Sm sm(0, sc, k, sched, nullptr, mem);
    const Cycle cycles = run(sm, mem);
    // Steady-state per-iteration cost: ~hitLatency + small issue
    // overhead; bound generously on both sides.
    const Cycle steady = cycles - mc.dram.baseLatency;
    EXPECT_GE(steady, (trips - 1) * 20);
    EXPECT_LE(steady, (trips - 1) * 40 + 64);
}

TEST(Validation, DramBandwidthBoundsStreams)
{
    // 16 warps streaming distinct lines: the run cannot beat
    // lines x serviceInterval / partitions.
    KernelBuilder b("stream");
    const int r = b.load(std::make_unique<StridedGen>(0x4000'0000, 8192,
                                                      8192 * 16));
    b.alu({r}, 1);
    const std::uint64_t trips = 64;
    const Kernel k = b.build(trips);

    const MemSystemConfig mc = memCfg();
    MemorySystem mem(mc);
    LrrScheduler sched;
    SmConfig sc;
    sc.warpsPerSm = 16;
    sc.warpsPerBlock = 16;
    sc.jobsPerWarp = 1;
    Sm sm(0, sc, k, sched, nullptr, mem);
    const Cycle cycles = run(sm, mem);
    const std::uint64_t lines = 16 * trips;
    const Cycle floor = lines * mc.dram.serviceInterval /
        static_cast<Cycle>(mc.numPartitions);
    EXPECT_GE(cycles + mc.dram.baseLatency, floor);
}

TEST(Validation, TlpHidesMemoryLatency)
{
    // The same stream with 1 warp vs 16 warps: parallelism must
    // shorten the run by several x (latency overlap).
    const auto build = [] {
        KernelBuilder b("s");
        const int r = b.load(std::make_unique<StridedGen>(
            0x4000'0000, 8192, 8192 * 16));
        b.alu({r}, 1);
        return b.build(32);
    };
    Cycle one = 0;
    Cycle sixteen = 0;
    {
        const Kernel k = build();
        MemorySystem mem(memCfg());
        LrrScheduler sched;
        SmConfig sc;
        sc.warpsPerSm = 1;
        sc.warpsPerBlock = 1;
        sc.jobsPerWarp = 1;
        Sm sm(0, sc, k, sched, nullptr, mem);
        one = run(sm, mem);
    }
    {
        const Kernel k = build();
        MemorySystem mem(memCfg());
        LrrScheduler sched;
        SmConfig sc;
        sc.warpsPerSm = 16;
        sc.warpsPerBlock = 16;
        sc.jobsPerWarp = 1;
        Sm sm(0, sc, k, sched, nullptr, mem);
        sixteen = run(sm, mem);
    }
    // 16 warps do 16x the work; anything under 4x the single-warp time
    // demonstrates at least 4x latency overlap.
    EXPECT_LT(sixteen, one * 4);
}

TEST(Validation, L2HitLatencyBelowDram)
{
    // Two SMs read the same line far apart in time: the second SM's
    // L1 misses but the shared L2 serves it at l2HitLatency.
    KernelBuilder b("l2");
    const int r = b.load(std::make_unique<UniformGen>(0x9000));
    b.alu({r}, 1);
    const Kernel k = b.build(1);

    const MemSystemConfig mc = memCfg();
    MemorySystem mem(mc);
    LrrScheduler s0;
    LrrScheduler s1;
    SmConfig sc;
    sc.warpsPerSm = 1;
    sc.warpsPerBlock = 1;
    sc.jobsPerWarp = 1;
    Sm sm0(0, sc, k, s0, nullptr, mem);
    Sm sm1(1, sc, k, s1, nullptr, mem);

    // Run SM0 alone to completion, then start SM1.
    Cycle now = 0;
    while (!sm0.done() && now < 100000) {
        mem.tick(now);
        sm0.tick(now);
        ++now;
    }
    const Cycle sm1_start = now;
    while (!sm1.done() && now < 200000) {
        mem.tick(now);
        sm1.tick(now);
        ++now;
    }
    const Cycle sm1_cycles = now - sm1_start;
    EXPECT_GE(sm1_cycles, mc.l2HitLatency);
    EXPECT_LT(sm1_cycles, mc.dram.baseLatency);
}

} // namespace
} // namespace apres
