/**
 * @file
 * Tracer tests: ring-buffer mechanics, Chrome JSON shape, and the
 * golden-trace regression suite.
 *
 * The golden suite pins the *event sequence* — the order of typed
 * events (type/pc/warp) per lane, not wall timestamps — of fixed-seed
 * KM/NW mini-kernels under GTO+none and LAWS+SAP against checked-in
 * files in tests/golden/. The sequence is part of the simulator's
 * contract: an engine change that reorders L1 outcomes or LAWS group
 * moves is a behaviour change even when aggregate stats survive.
 * Regenerate after an intentional change with
 * scripts/regen_golden_traces.py (wraps this binary's regen mode,
 * enabled by the APRES_REGEN_GOLDEN environment variable).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "sim/gpu.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

/**
 * Events pinned per lane. Mini-kernel runs stay well under the default
 * ring capacity (the tests assert zero drops), so this prefix is a
 * stable window from cycle 0.
 */
constexpr std::size_t kGoldenEventsPerLane = 250;

GpuConfig
traceGpu(const std::string& sched, const std::string& pf)
{
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    cfg.scheduler = sched;
    cfg.prefetcher = pf;
    cfg.maxCycles = 2'000'000;
    cfg.trace = true;
    return cfg;
}

/** One golden case: a Table IV mini-kernel under one policy pair. */
struct TraceCase
{
    const char* workload;
    const char* sched;
    const char* pf;
};

std::string
goldenFileName(const TraceCase& c)
{
    return std::string("trace_") + c.workload + "_" + c.sched + "_" +
           c.pf + ".txt";
}

/**
 * Golden directory: the checked-in tests/golden by default, but
 * overridable at run time so tooling (scripts/regen_golden_traces.py
 * --golden-dir, and its ctest smoke test) can regenerate into a
 * scratch directory without touching the committed files.
 */
std::string
goldenDir()
{
    if (const char* env = std::getenv("APRES_TRACE_GOLDEN_DIR"))
        return env;
    return APRES_TRACE_GOLDEN_DIR;
}

/** Run the case and return the truncated event summary. */
std::string
runTraceCase(const TraceCase& c)
{
    const Workload wl = makeWorkload(c.workload, 0.02);
    const GpuConfig cfg = traceGpu(c.sched, c.pf);
    Gpu gpu(cfg, wl.kernel);
    const RunResult r = gpu.run();
    EXPECT_TRUE(r.completed) << c.workload;
    const Tracer* t = gpu.tracer();
    EXPECT_NE(t, nullptr);
    if (t == nullptr)
        return {};
    // A drop would shift the retained window and invalidate the golden
    // prefix; mini-kernels must fit the default ring.
    EXPECT_EQ(t->dropped(), 0u) << c.workload;
    EXPECT_GT(t->recorded(), 0u) << c.workload;
    return t->eventSummary(kGoldenEventsPerLane);
}

class GoldenTrace : public ::testing::TestWithParam<TraceCase>
{
};

TEST_P(GoldenTrace, EventSequenceMatchesGoldenFile)
{
    const TraceCase c = GetParam();
    const std::string path = goldenDir() + "/" + goldenFileName(c);
    const std::string summary = runTraceCase(c);
    ASSERT_FALSE(summary.empty());

    if (std::getenv("APRES_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << summary;
        GTEST_LOG_(INFO) << "regenerated " << path;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run scripts/regen_golden_traces.py";
    std::ostringstream golden;
    golden << in.rdbuf();

    if (summary == golden.str()) {
        SUCCEED();
        return;
    }
    // Point at the first diverging line; dumping both full summaries
    // would drown the signal.
    std::istringstream a(golden.str());
    std::istringstream b(summary);
    std::string la;
    std::string lb;
    std::size_t line = 0;
    while (true) {
        ++line;
        const bool ga = static_cast<bool>(std::getline(a, la));
        const bool gb = static_cast<bool>(std::getline(b, lb));
        if (!ga && !gb)
            break;
        if (!ga || !gb || la != lb) {
            FAIL() << goldenFileName(c) << " diverges at line " << line
                   << ":\n  golden: " << (ga ? la : "<eof>")
                   << "\n  actual: " << (gb ? lb : "<eof>")
                   << "\nIf the change is intentional, rerun "
                      "scripts/regen_golden_traces.py";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    KmNwMiniKernels, GoldenTrace,
    ::testing::Values(TraceCase{"KM", "gto", "none"},
                      TraceCase{"KM", "laws", "sap"},
                      TraceCase{"NW", "gto", "none"},
                      TraceCase{"NW", "laws", "sap"}),
    [](const ::testing::TestParamInfo<TraceCase>& info) {
        return std::string(info.param.workload) + "_" +
               info.param.sched + "_" + info.param.pf;
    });

// ---------------------------------------------------------------------
// Tracer mechanics
// ---------------------------------------------------------------------

TEST(Tracer, RingKeepsNewestAndCountsDrops)
{
    Tracer t(/*num_sms=*/1, /*capacity_per_lane=*/4);
    for (std::uint64_t i = 0; i < 6; ++i) {
        t.record(0, TraceEventType::kWarpIssue, /*cycle=*/i,
                 /*pc=*/static_cast<Pc>(i), /*warp=*/0);
    }
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.retained(), 4u);
    EXPECT_EQ(t.dropped(), 2u);
    // Oldest-first within the lane, and the two oldest are gone.
    EXPECT_EQ(t.eventSummary(), "sm0 warp-issue pc=2 warp=0\n"
                                "sm0 warp-issue pc=3 warp=0\n"
                                "sm0 warp-issue pc=4 warp=0\n"
                                "sm0 warp-issue pc=5 warp=0\n");
}

TEST(Tracer, SummaryTruncatesPerLaneAndSkipsEngine)
{
    Tracer t(1, 16);
    for (std::uint64_t i = 0; i < 8; ++i)
        t.record(0, TraceEventType::kL1Hit, i, 4, 1);
    t.record(t.engineLane(), TraceEventType::kFfIdleSpan, 100,
             kInvalidPc, kInvalidWarp, 50);
    t.record(t.memLane(), TraceEventType::kDramService, 101, 8, 2);
    const std::string s = t.eventSummary(/*max_per_lane=*/2);
    EXPECT_EQ(s, "sm0 l1-hit pc=4 warp=1\n"
                 "sm0 l1-hit pc=4 warp=1\n"
                 "mem dram-service pc=8 warp=2\n");
    EXPECT_EQ(t.laneLabel(0), "sm0");
    EXPECT_EQ(t.laneLabel(t.memLane()), "mem");
    EXPECT_EQ(t.laneLabel(t.engineLane()), "engine");
}

TEST(Tracer, EveryEventTypeHasAStableName)
{
    // The golden files spell these names; renaming one is a contract
    // change and must show up here, not only as a golden-file diff.
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kWarpIssue),
                 "warp-issue");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kSchedulerIdle),
                 "scheduler-idle");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kL1Hit), "l1-hit");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kL1Miss), "l1-miss");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kL1Bypass),
                 "l1-bypass");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kMshrMerge),
                 "mshr-merge");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kDramService),
                 "dram-service");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kLawsGroupPromote),
                 "laws-group-promote");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kLawsGroupDemote),
                 "laws-group-demote");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kSapPtTrain),
                 "sap-pt-train");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kSapStrideMatch),
                 "sap-stride-match");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kSapPrefetchIssue),
                 "sap-prefetch-issue");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kSapWqDrain),
                 "sap-wq-drain");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kFfIdleSpan),
                 "ff-idle-span");
}

// ---------------------------------------------------------------------
// End-to-end behaviour
// ---------------------------------------------------------------------

TEST(Trace, OffByDefault)
{
    const Workload wl = makeWorkload("KM", 0.02);
    GpuConfig cfg = traceGpu("gto", "none");
    cfg.trace = false;
    Gpu gpu(cfg, wl.kernel);
    gpu.run();
    EXPECT_EQ(gpu.tracer(), nullptr);
    EXPECT_EQ(gpu.metrics(), nullptr);
}

TEST(Trace, ChromeJsonHasLanesEventsAndStats)
{
    const Workload wl = makeWorkload("KM", 0.02);
    Gpu gpu(traceGpu("laws", "sap"), wl.kernel);
    gpu.run();
    std::ostringstream os;
    gpu.writeTrace(os);
    const std::string json = os.str();
    // Structural validity is checked by `python -m json.tool` in CI;
    // here pin the document's shape and lane naming.
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.find_last_not_of(" \n"),
              json.rfind('}')); // document closes cleanly
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    for (const char* lane : {"sm0", "sm1", "mem", "engine"})
        EXPECT_NE(json.find("\"name\": \"" + std::string(lane) + "\""),
                  std::string::npos)
            << lane;
    EXPECT_NE(json.find("\"warp-issue\""), std::string::npos);
    EXPECT_NE(json.find("\"recorded\""), std::string::npos);
}

TEST(Trace, TraceFileIsWrittenOnRunCompletion)
{
    const Workload wl = makeWorkload("NW", 0.02);
    GpuConfig cfg = traceGpu("gto", "none");
    cfg.traceFile = ::testing::TempDir() + "apres_trace_test.json";
    {
        Gpu gpu(cfg, wl.kernel);
        gpu.run();
    }
    std::ifstream in(cfg.traceFile);
    ASSERT_TRUE(in) << cfg.traceFile;
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_FALSE(os.str().empty());
    EXPECT_EQ(os.str().front(), '{');
}

TEST(Trace, FastForwardEmitsSameEventSequenceAsNaive)
{
    // The ff engine only skips provably issue-free cycles, so the
    // machine-behaviour lanes (the engine lane is excluded from the
    // summary) must be identical event-for-event, not merely
    // stat-equivalent.
    const Workload wl = makeWorkload("KM", 0.02);
    GpuConfig ff = traceGpu("laws", "sap");
    ff.fastForward = true;
    GpuConfig naive = ff;
    naive.fastForward = false;

    Gpu a(ff, wl.kernel);
    a.run();
    Gpu b(naive, wl.kernel);
    b.run();
    ASSERT_NE(a.tracer(), nullptr);
    ASSERT_NE(b.tracer(), nullptr);
    EXPECT_EQ(a.tracer()->eventSummary(), b.tracer()->eventSummary());
}

TEST(Trace, IdenticalAcrossParallelSweepJobs)
{
    // The acceptance bar for golden traces: a --jobs parallel sweep
    // yields byte-identical traces to the sequential sweep, per job
    // (derived per-job seeds are a pure function of the job index, so
    // slot i is comparable across thread counts).
    const auto kernel =
        std::make_shared<const Kernel>(makeWorkload("KM", 0.02).kernel);

    const auto sweepSummaries = [&](int threads) {
        RunnerOptions opts;
        opts.threads = threads;
        SweepRunner runner(opts);
        std::vector<std::string> summaries(3);
        for (std::size_t i = 0; i < summaries.size(); ++i) {
            SweepJob job;
            job.label = "job" + std::to_string(i);
            job.config = traceGpu("laws", "sap");
            job.kernel = kernel;
            job.inspect = [&summaries, i](const Gpu& gpu, RunResult&) {
                summaries[i] = gpu.tracer()->eventSummary();
            };
            runner.submit(std::move(job));
        }
        runner.runAll();
        return summaries;
    };

    const std::vector<std::string> sequential = sweepSummaries(1);
    const std::vector<std::string> parallel = sweepSummaries(3);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_FALSE(sequential[i].empty()) << i;
        EXPECT_EQ(sequential[i], parallel[i]) << "job " << i;
    }
}

} // namespace
} // namespace apres
