/**
 * @file
 * Unit tests for the event-based energy model.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hpp"

namespace apres {
namespace {

TEST(Energy, ZeroInputsZeroEnergy)
{
    const EnergyBreakdown e = computeEnergy(EnergyInputs{});
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
    EXPECT_DOUBLE_EQ(e.structureFraction(), 0.0);
}

TEST(Energy, ComponentsChargedIndependently)
{
    EnergyParams p;
    EnergyInputs in;
    in.dramAccesses = 10;
    const EnergyBreakdown e = computeEnergy(in, p);
    EXPECT_DOUBLE_EQ(e.dram, 10 * p.dramAccess);
    EXPECT_DOUBLE_EQ(e.core, 0.0);
    EXPECT_DOUBLE_EQ(e.l1, 0.0);
    EXPECT_DOUBLE_EQ(e.total(), e.dram);
}

TEST(Energy, CoreChargesAluAndRegisterFile)
{
    EnergyParams p;
    EnergyInputs in;
    in.instructions = 100;
    const EnergyBreakdown e = computeEnergy(in, p);
    EXPECT_DOUBLE_EQ(e.core, 100 * (p.aluOp + p.registerAccess));
}

TEST(Energy, MonotoneInEveryInput)
{
    EnergyInputs base;
    base.instructions = 1000;
    base.l1Accesses = 500;
    base.l2Accesses = 100;
    base.dramAccesses = 50;
    base.structureAccesses = 200;
    base.smCycles = 10000;
    const double ref = computeEnergy(base).total();

    const auto bump = [&](auto member) {
        EnergyInputs in = base;
        in.*member += 1;
        return computeEnergy(in).total();
    };
    EXPECT_GT(bump(&EnergyInputs::instructions), ref);
    EXPECT_GT(bump(&EnergyInputs::l1Accesses), ref);
    EXPECT_GT(bump(&EnergyInputs::l2Accesses), ref);
    EXPECT_GT(bump(&EnergyInputs::dramAccesses), ref);
    EXPECT_GT(bump(&EnergyInputs::structureAccesses), ref);
    EXPECT_GT(bump(&EnergyInputs::smCycles), ref);
}

TEST(Energy, StructureFractionSmallForRealisticMix)
{
    // One structure event per load, loads ~20% of instructions: the
    // paper reports the added blocks below 3% of total energy.
    EnergyInputs in;
    in.instructions = 1'000'000;
    in.l1Accesses = 250'000;
    in.l2Accesses = 120'000;
    in.dramAccesses = 80'000;
    in.structureAccesses = 220'000;
    in.smCycles = 15 * 800'000;
    const EnergyBreakdown e = computeEnergy(in);
    EXPECT_LT(e.structureFraction(), 0.03);
    EXPECT_GT(e.structureFraction(), 0.0);
}

TEST(Energy, TimeProportionalTermRewardsSpeedups)
{
    // Two runs doing identical work; the faster one spends less.
    EnergyInputs slow;
    slow.instructions = 1'000'000;
    slow.dramAccesses = 100'000;
    slow.smCycles = 15 * 1'000'000;
    EnergyInputs fast = slow;
    fast.smCycles = 15 * 800'000;
    EXPECT_LT(computeEnergy(fast).total(), computeEnergy(slow).total());
}

TEST(Energy, CustomParamsRespected)
{
    EnergyParams p;
    p.dramAccess = 1.0;
    p.smCyclePipeline = 0.0;
    EnergyInputs in;
    in.dramAccesses = 7;
    in.smCycles = 1000;
    const EnergyBreakdown e = computeEnergy(in, p);
    EXPECT_DOUBLE_EQ(e.total(), 7.0);
}

} // namespace
} // namespace apres
