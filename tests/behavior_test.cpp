/**
 * @file
 * Behavioural integration tests reproducing the paper's illustrative
 * contrasts (Fig. 6): under LAWS, warps that share a high-locality
 * load execute it back-to-back and convert the baseline's misses into
 * consecutive hits; under APRES, prefetch-targeted warps are pulled
 * forward so their demands merge with in-flight prefetches.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

/**
 * A Fig. 6-shaped kernel: one high-locality load (all warps share a
 * line-sized window per iteration group) followed by a streaming load.
 */
Kernel
figure6Kernel()
{
    KernelBuilder b("fig6");
    // High-locality load: warps in the same iteration group share a
    // pseudo-random line of a window that thrashes at full TLP but
    // fits when a leading pack runs together (lagged partners).
    const int a = b.load(std::make_unique<IrregularGen>(
                             0x4000'0000, 512 * 1024, 8, 2, 0xF16, 2),
                         4, 0x100);
    const int x = b.alu({a}, 1);
    // Streaming load with a clean inter-warp stride (SAP fodder).
    const int c = b.load(std::make_unique<StridedGen>(
                             0x5000'0000, 4096, 4096 * 48),
                         4, 0x200, x);
    b.alu({c}, 1);
    return b.build(48);
}

GpuConfig
smallConfig(const std::string& sched, const std::string& pf)
{
    GpuConfig cfg;
    cfg.numSms = 4;
    cfg.scheduler = sched;
    cfg.prefetcher = pf;
    cfg.maxCycles = 5'000'000;
    return cfg;
}

TEST(Figure6, LawsRaisesHitAfterHitOverLrr)
{
    const Kernel k = figure6Kernel();
    const RunResult lrr =
        simulate(smallConfig("lrr", "none"), k);
    const RunResult laws = simulate(
        smallConfig("laws", "none"), k);
    ASSERT_TRUE(lrr.completed);
    ASSERT_TRUE(laws.completed);
    // Grouped execution produces consecutive hits (the paper's
    // hit-after-hit signature of LAWS, Section V-C).
    const double lrr_hah = static_cast<double>(lrr.l1.hitAfterHit) /
        static_cast<double>(lrr.l1.demandAccesses);
    const double laws_hah = static_cast<double>(laws.l1.hitAfterHit) /
        static_cast<double>(laws.l1.demandAccesses);
    EXPECT_GE(laws_hah, lrr_hah * 0.95);
}

TEST(Figure6, ApresMergesDemandsIntoPrefetches)
{
    const Kernel k = figure6Kernel();
    const RunResult apres = simulate(
        smallConfig("laws", "sap"), k);
    ASSERT_TRUE(apres.completed);
    // SAP fired on the strided load and the promoted warps' demands
    // merged into the prefetch MSHRs (or hit the prefetched lines).
    EXPECT_GT(apres.policy.get("sap.strideMatches"), 0.0);
    EXPECT_GT(apres.prefetchesIssued, 0u);
    EXPECT_GT(apres.l1.usefulPrefetches + apres.l1.demandMergedIntoPrefetch,
              0u);
    EXPECT_GT(apres.policy.get("laws.prefetchTargetPromotions"), 0.0);
}

TEST(Figure6, ApresNotSlowerThanBaseline)
{
    const Kernel k = figure6Kernel();
    const RunResult lrr =
        simulate(smallConfig("lrr", "none"), k);
    const RunResult apres = simulate(
        smallConfig("laws", "sap"), k);
    EXPECT_GE(apres.ipc, lrr.ipc * 0.95);
}

TEST(Figure6, StrPrefetchesTheStridedLoad)
{
    const Kernel k = figure6Kernel();
    const RunResult str = simulate(
        smallConfig("lrr", "str"), k);
    ASSERT_TRUE(str.completed);
    EXPECT_GT(str.prefetchesIssued, 0u);
}

TEST(Figure6, SldStaysQuietOnLargeStrides)
{
    // 4 KB strides never co-touch a 512 B macro block: SLD must not
    // fire on the streaming load (the Section III-C observation).
    const Kernel k = figure6Kernel();
    const RunResult sld = simulate(
        smallConfig("lrr", "sld"), k);
    ASSERT_TRUE(sld.completed);
    EXPECT_LT(sld.prefetchesIssued, sld.l1.demandAccesses / 20);
}

} // namespace
} // namespace apres
