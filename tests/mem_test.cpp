/**
 * @file
 * Unit tests for the coalescer, DRAM partition timing and the shared
 * memory system (L2 + DRAM).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/coalescer.hpp"
#include "mem/dram.hpp"
#include "mem/memory_system.hpp"

namespace apres {
namespace {

TEST(Coalescer, FullyCoalescedWordAccess)
{
    Coalescer c(128);
    // 32 lanes x 4 B from a line-aligned base: one line.
    const auto lines = c.coalesce(0x1000, 4);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u);
}

TEST(Coalescer, MisalignedWordAccessSpansTwoLines)
{
    Coalescer c(128);
    const auto lines = c.coalesce(0x1040, 4); // crosses a line boundary
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[1], 0x1080u);
}

TEST(Coalescer, FullyUncoalesced)
{
    Coalescer c(128);
    const auto lines = c.coalesce(0, 128); // one line per lane
    EXPECT_EQ(lines.size(), 32u);
    // First-touch order preserved: lane 0 first.
    EXPECT_EQ(lines.front(), 0u);
    EXPECT_EQ(lines.back(), 31u * 128);
}

TEST(Coalescer, EightByteLanesHalfLine)
{
    Coalescer c(128);
    const auto lines = c.coalesce(0, 8); // 32 x 8 B = 256 B = 2 lines
    EXPECT_EQ(lines.size(), 2u);
}

TEST(Coalescer, PartialWarp)
{
    Coalescer c(128);
    const auto lines = c.coalesce(0, 128, 4);
    EXPECT_EQ(lines.size(), 4u);
}

TEST(Coalescer, LineOf)
{
    Coalescer c(128);
    EXPECT_EQ(c.lineOf(0x1005), 0x1000u);
    EXPECT_EQ(c.lineOf(0x107F), 0x1000u);
    EXPECT_EQ(c.lineOf(0x1080), 0x1080u);
}

TEST(Dram, BaseLatencyWhenIdle)
{
    DramPartition dram({.baseLatency = 440, .serviceInterval = 6});
    EXPECT_EQ(dram.schedule(100), 100u + 440);
}

TEST(Dram, BackToBackRequestsQueue)
{
    DramPartition dram({.baseLatency = 440, .serviceInterval = 6});
    EXPECT_EQ(dram.schedule(0), 440u);
    // The channel is busy until cycle 6: the second transfer starts
    // then.
    EXPECT_EQ(dram.schedule(0), 6u + 440);
    EXPECT_EQ(dram.schedule(0), 12u + 440);
    EXPECT_EQ(dram.stats().requests, 3u);
    EXPECT_EQ(dram.stats().totalQueueDelay, 6u + 12u);
}

TEST(Dram, IdleGapsResetQueueing)
{
    DramPartition dram({.baseLatency = 440, .serviceInterval = 6});
    dram.schedule(0);
    EXPECT_EQ(dram.schedule(1000), 1000u + 440);
    EXPECT_DOUBLE_EQ(dram.stats().avgQueueDelay(), 0.0);
}

TEST(Dram, ResetClearsChannel)
{
    DramPartition dram({});
    dram.schedule(0);
    dram.reset();
    EXPECT_EQ(dram.nextFreeCycle(), 0u);
    EXPECT_EQ(dram.stats().requests, 0u);
}

/** Collects responses delivered to one SM slot. */
class RecordingClient : public MemClient
{
  public:
    void
    memResponse(const MemRequest& req, Cycle now) override
    {
        responses.push_back({req, now});
    }

    std::vector<std::pair<MemRequest, Cycle>> responses;
};

MemSystemConfig
smallMemConfig()
{
    MemSystemConfig cfg;
    cfg.numPartitions = 2;
    cfg.l2Partition.sizeBytes = 8 * 1024;
    cfg.l2Partition.hashSetIndex = false;
    cfg.l2HitLatency = 200;
    cfg.dram.baseLatency = 440;
    cfg.dram.serviceInterval = 6;
    return cfg;
}

MemRequest
readFrom(SmId sm, Addr line)
{
    MemRequest req;
    req.sm = sm;
    req.lineAddr = line;
    return req;
}

TEST(MemorySystem, L2MissGoesToDramThenHits)
{
    MemorySystem mem(smallMemConfig());
    RecordingClient client;
    mem.registerClient(0, &client);

    mem.submitRead(readFrom(0, 0x1000), 0);
    mem.tick(439);
    EXPECT_TRUE(client.responses.empty());
    mem.tick(440);
    ASSERT_EQ(client.responses.size(), 1u);
    EXPECT_EQ(client.responses[0].second, 440u);

    // Second read of the same line: L2 hit at 200 cycles.
    mem.submitRead(readFrom(0, 0x1000), 1000);
    mem.tick(1200);
    ASSERT_EQ(client.responses.size(), 2u);
    EXPECT_EQ(client.responses[1].second, 1200u);
}

TEST(MemorySystem, CrossSmMergingOnL2Mshr)
{
    MemorySystem mem(smallMemConfig());
    RecordingClient c0;
    RecordingClient c1;
    mem.registerClient(0, &c0);
    mem.registerClient(1, &c1);

    mem.submitRead(readFrom(0, 0x2000), 0);
    mem.submitRead(readFrom(1, 0x2000), 10); // merges on the L2 MSHR
    mem.tick(500);
    ASSERT_EQ(c0.responses.size(), 1u);
    ASSERT_EQ(c1.responses.size(), 1u);
    // Both were served by one DRAM transfer.
    int p = mem.partitionOf(0x2000);
    EXPECT_EQ(mem.dram(p).stats().requests, 1u);
}

TEST(MemorySystem, PartitionMappingStable)
{
    MemorySystem mem(smallMemConfig());
    const int p = mem.partitionOf(0x4000);
    EXPECT_EQ(p, mem.partitionOf(0x4000));
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 2);
}

TEST(MemorySystem, PartitionsSpreadLines)
{
    MemorySystem mem(smallMemConfig());
    int counts[2] = {0, 0};
    for (Addr line = 0; line < 1000 * 128; line += 128)
        counts[mem.partitionOf(line)]++;
    EXPECT_GT(counts[0], 300);
    EXPECT_GT(counts[1], 300);
}

TEST(MemorySystem, WritesAreFireAndForget)
{
    MemorySystem mem(smallMemConfig());
    RecordingClient client;
    mem.registerClient(0, &client);
    MemRequest store = readFrom(0, 0x3000);
    store.isWrite = true;
    mem.submitWrite(store, 0);
    mem.tick(2000);
    EXPECT_TRUE(client.responses.empty());
    EXPECT_GT(mem.traffic().storeBytesToL2, 0u);
    EXPECT_GT(mem.traffic().storeBytesToDram, 0u);
}

TEST(MemorySystem, TrafficCountersTrackReads)
{
    MemorySystem mem(smallMemConfig());
    RecordingClient client;
    mem.registerClient(0, &client);
    mem.submitRead(readFrom(0, 0x1000), 0);
    mem.tick(1000);
    EXPECT_EQ(mem.traffic().requestBytesToL2, 32u);
    EXPECT_EQ(mem.traffic().fillBytesToL1, 128u);
    EXPECT_EQ(mem.traffic().fillBytesFromDram, 128u);
    EXPECT_EQ(mem.traffic().interconnectBytes(), 32u + 128u);
}

TEST(MemorySystem, ResponsesDeliveredInOrder)
{
    MemorySystem mem(smallMemConfig());
    RecordingClient client;
    mem.registerClient(0, &client);
    // Two misses to the same partition queue behind each other.
    Addr a = 0;
    Addr b = 128;
    while (mem.partitionOf(b) != mem.partitionOf(a))
        b += 128;
    mem.submitRead(readFrom(0, a), 0);
    mem.submitRead(readFrom(0, b), 0);
    mem.tick(1000);
    ASSERT_EQ(client.responses.size(), 2u);
    EXPECT_LE(client.responses[0].second, client.responses[1].second);
}

TEST(MemorySystem, L2MshrFullStreamsFromDram)
{
    MemSystemConfig cfg = smallMemConfig();
    cfg.l2Partition.numMshrs = 1; // force exhaustion
    MemorySystem mem(cfg);
    RecordingClient client;
    mem.registerClient(0, &client);

    // Three distinct lines on the same partition: the first takes the
    // single L2 MSHR; later ones fall back to direct DRAM streaming
    // (no merging, no L2 fill) but still complete.
    std::vector<Addr> lines;
    for (Addr line = 0; lines.size() < 3; line += 128) {
        if (mem.partitionOf(line) == mem.partitionOf(0))
            lines.push_back(line);
    }
    for (const Addr line : lines)
        mem.submitRead(readFrom(0, line), 0);
    mem.tick(2000);
    EXPECT_EQ(client.responses.size(), 3u);
}

TEST(MemorySystem, ResetRestoresPristineState)
{
    MemorySystem mem(smallMemConfig());
    RecordingClient client;
    mem.registerClient(0, &client);
    mem.submitRead(readFrom(0, 0x1000), 0);
    mem.reset();
    EXPECT_TRUE(mem.idle());
    EXPECT_EQ(mem.traffic().interconnectBytes(), 0u);
    // The dropped in-flight response must not arrive.
    mem.tick(10000);
    EXPECT_TRUE(client.responses.empty());
}

TEST(MemorySystem, L2StatsAggregation)
{
    MemorySystem mem(smallMemConfig());
    RecordingClient client;
    mem.registerClient(0, &client);
    mem.submitRead(readFrom(0, 0x1000), 0);
    mem.submitRead(readFrom(0, 0x9000), 0);
    mem.tick(1000);
    const CacheStats total = mem.l2StatsTotal();
    EXPECT_EQ(total.demandAccesses, 2u);
    EXPECT_EQ(total.demandMisses, 2u);
}

} // namespace
} // namespace apres
