/**
 * @file
 * Tests for the extensions beyond the paper's core configuration: the
 * DRAM bank/row-buffer model, the CSV reporter, and static
 * control-divergence (active lanes) on memory instructions.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/csv.hpp"
#include "core/sm.hpp"
#include "mem/dram.hpp"
#include "sched/lrr.hpp"
#include "sim/gpu.hpp"
#include "sim/timeline.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

DramConfig
rowConfig()
{
    DramConfig cfg;
    cfg.baseLatency = 440;
    cfg.rowBufferModel = true;
    cfg.numBanks = 4;
    cfg.rowBytes = 2048;
    cfg.rowHitInterval = 3;
    cfg.rowMissInterval = 12;
    return cfg;
}

TEST(DramRowModel, SequentialLinesHitOpenRow)
{
    DramPartition dram(rowConfig());
    // 16 consecutive lines: one row miss per 2 KB row, 15 hits.
    for (int i = 0; i < 16; ++i)
        dram.schedule(0, static_cast<Addr>(i) * 128);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
    EXPECT_EQ(dram.stats().rowHits, 15u);
    EXPECT_GT(dram.stats().rowHitRate(), 0.9);
}

TEST(DramRowModel, ScatteredAccessesMissRows)
{
    DramPartition dram(rowConfig());
    // Strides of 16 KB: every access opens a new row.
    for (int i = 0; i < 16; ++i)
        dram.schedule(0, static_cast<Addr>(i) * 16384);
    EXPECT_EQ(dram.stats().rowHits, 0u);
    EXPECT_EQ(dram.stats().rowMisses, 16u);
}

TEST(DramRowModel, RowHitsIncreaseEffectiveBandwidth)
{
    DramPartition seq(rowConfig());
    DramPartition scattered(rowConfig());
    Cycle seq_done = 0;
    Cycle scat_done = 0;
    for (int i = 0; i < 64; ++i) {
        seq_done = seq.schedule(0, static_cast<Addr>(i) * 128);
        scat_done = scattered.schedule(0, static_cast<Addr>(i) * 16384);
    }
    // Same request count, but the sequential stream drains much
    // faster.
    EXPECT_LT(seq_done, scat_done);
}

TEST(DramRowModel, BankInterleavingTracksRowsIndependently)
{
    DramPartition dram(rowConfig());
    // Alternate between two rows in *different* banks: both stay open.
    const Addr row_a = 0;            // bank 0
    const Addr row_b = 2048;         // bank 1
    dram.schedule(0, row_a);
    dram.schedule(0, row_b);
    dram.schedule(0, row_a + 128);
    dram.schedule(0, row_b + 128);
    EXPECT_EQ(dram.stats().rowMisses, 2u);
    EXPECT_EQ(dram.stats().rowHits, 2u);
}

TEST(DramRowModel, ConflictingRowsSameBankThrash)
{
    DramPartition dram(rowConfig());
    // Two rows that map to the same bank (4 banks x 2 KB = 8 KB
    // period): ping-ponging reopens the row every time.
    const Addr row_a = 0;
    const Addr row_b = 4 * 2048;
    for (int i = 0; i < 4; ++i) {
        dram.schedule(0, row_a);
        dram.schedule(0, row_b);
    }
    EXPECT_EQ(dram.stats().rowHits, 0u);
}

TEST(DramRowModel, FlatModelUnaffectedByAddresses)
{
    DramConfig cfg; // flat
    DramPartition dram(cfg);
    const Cycle a = dram.schedule(0, 0);
    DramPartition dram2(cfg);
    const Cycle b = dram2.schedule(0, 0x12345680);
    EXPECT_EQ(a, b);
    EXPECT_EQ(dram.stats().rowHits + dram.stats().rowMisses, 0u);
}

TEST(DramRowModel, EndToEndSimulationRuns)
{
    const Workload wl = makeWorkload("SP", 0.05);
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    cfg.mem.dram.rowBufferModel = true;
    const RunResult r = simulate(cfg, wl.kernel);
    EXPECT_TRUE(r.completed);
}

TEST(Csv, HeaderAndRows)
{
    CsvWriter csv("run");
    StatSet a;
    a.set("x", 1.0);
    a.set("y", 2.5);
    StatSet b;
    b.set("x", 3.0);
    b.set("y", 4.0);
    csv.addRow("first", a);
    csv.addRow("second", b);
    std::ostringstream oss;
    csv.write(oss);
    EXPECT_EQ(oss.str(), "run,x,y\nfirst,1,2.5\nsecond,3,4\n");
}

TEST(Csv, EmptyWritesNothing)
{
    CsvWriter csv;
    std::ostringstream oss;
    csv.write(oss);
    EXPECT_TRUE(oss.str().empty());
}

TEST(Csv, MissingKeysReadAsZero)
{
    CsvWriter csv;
    StatSet a;
    a.set("x", 1.0);
    StatSet b; // no "x"
    csv.addRow("a", a);
    csv.addRow("b", b);
    std::ostringstream oss;
    csv.write(oss);
    EXPECT_NE(oss.str().find("b,0"), std::string::npos);
}

TEST(ActiveLanes, PartialWarpCoalescesFewerLines)
{
    KernelBuilder b("t");
    // Fully uncoalesced (one line per lane) but only 4 lanes active.
    const int r = b.load(std::make_unique<UniformGen>(0x1000), 128,
                         kInvalidPc, kNoReg, /*active_lanes=*/4);
    b.alu({r}, 1);
    Kernel k = b.build(1);
    EXPECT_EQ(k.at(0).activeLanes, 4);

    MemSystemConfig mc;
    mc.numPartitions = 2;
    MemorySystem mem(mc);
    LrrScheduler sched;
    SmConfig sc;
    sc.warpsPerSm = 1;
    sc.warpsPerBlock = 1;
    sc.jobsPerWarp = 1;
    Sm sm(0, sc, k, sched, nullptr, mem);
    Cycle now = 0;
    while (!sm.done() && now < 100000) {
        mem.tick(now);
        sm.tick(now);
        ++now;
    }
    EXPECT_EQ(sm.l1().stats().demandAccesses, 4u);
}

TEST(ActiveLanes, DefaultIsFullWarp)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    Kernel k = b.build(1);
    EXPECT_EQ(k.at(0).activeLanes, kWarpSize);
}

TEST(AdaptiveBypass, StreamLoadsBypassAfterTraining)
{
    // A pure stream: every access misses, so after bypassMinAccesses
    // executions its requests skip the L1.
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<StridedGen>(0x4000'0000, 0,
                                                      4096));
    b.alu({r}, 1);
    Kernel k = b.build(64);

    MemSystemConfig mc;
    mc.numPartitions = 2;
    MemorySystem mem(mc);
    LrrScheduler sched;
    SmConfig sc;
    sc.warpsPerSm = 1;
    sc.warpsPerBlock = 1;
    sc.jobsPerWarp = 1;
    sc.lsu.adaptiveBypass = true;
    sc.lsu.bypassMinAccesses = 16;
    sc.lsu.bypassMissRate = 0.9;
    Sm sm(0, sc, k, sched, nullptr, mem);
    Cycle now = 0;
    while (!sm.done() && now < 1'000'000) {
        mem.tick(now);
        sm.tick(now);
        ++now;
    }
    ASSERT_TRUE(sm.done());
    EXPECT_GT(sm.lsuStats().bypassedLines, 0u);
    // The L1 stops seeing the stream once bypass engages.
    EXPECT_LT(sm.l1().stats().demandAccesses, 64u);
}

TEST(AdaptiveBypass, LocalityLoadsNeverBypass)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    Kernel k = b.build(64);

    MemSystemConfig mc;
    mc.numPartitions = 2;
    MemorySystem mem(mc);
    LrrScheduler sched;
    SmConfig sc;
    sc.warpsPerSm = 1;
    sc.warpsPerBlock = 1;
    sc.jobsPerWarp = 1;
    sc.lsu.adaptiveBypass = true;
    sc.lsu.bypassMinAccesses = 16;
    Sm sm(0, sc, k, sched, nullptr, mem);
    Cycle now = 0;
    while (!sm.done() && now < 1'000'000) {
        mem.tick(now);
        sm.tick(now);
        ++now;
    }
    ASSERT_TRUE(sm.done());
    EXPECT_EQ(sm.lsuStats().bypassedLines, 0u);
}

TEST(Timeline, SamplesCoverTheRun)
{
    const Workload wl = makeWorkload("SP", 0.05);
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    Gpu gpu(cfg, wl.kernel);
    TimelineRecorder recorder(500);
    const RunResult r = recorder.record(gpu);
    ASSERT_TRUE(r.completed);
    ASSERT_FALSE(recorder.samples().empty());
    // Samples are 500 cycles apart, except the final partial interval,
    // which ends exactly at the finish cycle.
    EXPECT_EQ(recorder.samples().front().cycleEnd, 500u);
    EXPECT_EQ(recorder.samples().back().cycleEnd, r.cycles);
    // Interval instructions (ipc x actual width) sum to the total.
    double sum = 0.0;
    Cycle prev = 0;
    for (const TimelineSample& s : recorder.samples()) {
        sum += s.intervalIpc * static_cast<double>(s.cycleEnd - prev);
        prev = s.cycleEnd;
    }
    EXPECT_NEAR(sum, static_cast<double>(r.instructions), 1.0);
    // The final cumulative IPC matches the run result.
    EXPECT_NEAR(recorder.samples().back().cumulativeIpc, r.ipc, 1e-9);
}

TEST(Timeline, CsvExportHasOneRowPerSample)
{
    const Workload wl = makeWorkload("SP", 0.05);
    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    Gpu gpu(cfg, wl.kernel);
    TimelineRecorder recorder(1000);
    recorder.record(gpu);
    CsvWriter csv("cycle");
    recorder.toCsv(csv);
    EXPECT_EQ(csv.size(), recorder.samples().size());
}

TEST(AdaptiveBypass, EndToEndDeterministic)
{
    const Workload wl = makeWorkload("HISTO", 0.05);
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    cfg.sm.lsu.adaptiveBypass = true;
    cfg.sm.lsu.bypassMinAccesses = 32;
    const RunResult a = simulate(cfg, wl.kernel);
    const RunResult b = simulate(cfg, wl.kernel);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.cycles, b.cycles);
}

} // namespace
} // namespace apres
