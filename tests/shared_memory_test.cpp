/**
 * @file
 * Tests for the shared-memory (scratchpad) timing model: bank-conflict
 * degrees, broadcast detection, and pipeline integration.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/shared_memory.hpp"
#include "core/sm.hpp"
#include "isa/kernel_text.hpp"
#include "mem/memory_system.hpp"
#include "sched/lrr.hpp"

namespace apres {
namespace {

TEST(SharedMemory, WordStrideIsConflictFree)
{
    // Lane i reads word i: each of the 32 lanes hits its own bank.
    EXPECT_EQ(sharedConflictDegree(0, 4, 32), 1);
}

TEST(SharedMemory, BroadcastIsFree)
{
    // All lanes read the same word.
    EXPECT_EQ(sharedConflictDegree(0x100, 0, 32), 1);
}

TEST(SharedMemory, SameBankDifferentWordsSerialize)
{
    // Stride 128 B = 32 words: every lane maps to bank 0 at a
    // different word -> 32-way conflict.
    EXPECT_EQ(sharedConflictDegree(0, 128, 32), 32);
}

TEST(SharedMemory, TwoWayConflictAtDoubleWordStride)
{
    // Stride 8 B = 2 words: lanes 0 and 16 share bank 0, etc.
    EXPECT_EQ(sharedConflictDegree(0, 8, 32), 2);
}

TEST(SharedMemory, PartialWarpLimitsConflicts)
{
    EXPECT_EQ(sharedConflictDegree(0, 128, 4), 4);
    EXPECT_EQ(sharedConflictDegree(0, 8, 16), 1);
}

TEST(SharedMemory, LatencyAddsConflictCycles)
{
    SharedMemConfig cfg;
    EXPECT_EQ(sharedAccessLatency(0, 4, 32, cfg), cfg.baseLatency);
    EXPECT_EQ(sharedAccessLatency(0, 128, 32, cfg),
              cfg.baseLatency + 31);
}

TEST(SharedMemory, PipelineChargesConflictLatency)
{
    // One warp alternating between a conflict-free and a fully
    // conflicting scratchpad access: the conflicting kernel is ~31
    // cycles/iteration slower.
    const auto build = [](int lane_stride) {
        KernelBuilder b("sh");
        const int r = b.sharedLoad(std::make_unique<UniformGen>(0),
                                   lane_stride);
        b.alu({r}, 1);
        return b.build(32);
    };
    const auto run = [](const Kernel& k) {
        MemSystemConfig mc;
        mc.numPartitions = 2;
        MemorySystem mem(mc);
        LrrScheduler sched;
        SmConfig sc;
        sc.warpsPerSm = 1;
        sc.warpsPerBlock = 1;
        sc.jobsPerWarp = 1;
        Sm sm(0, sc, k, sched, nullptr, mem);
        Cycle now = 0;
        while (!sm.done() && now < 1'000'000) {
            mem.tick(now);
            sm.tick(now);
            ++now;
        }
        return std::pair<Cycle, std::uint64_t>(
            now, sm.stats().sharedConflictCycles);
    };

    const Kernel clean = build(4);
    const Kernel conflicted = build(128);
    const auto [t_clean, c_clean] = run(clean);
    const auto [t_conf, c_conf] = run(conflicted);
    EXPECT_EQ(c_clean, 0u);
    EXPECT_EQ(c_conf, 31u * 32);
    EXPECT_GE(t_conf, t_clean + 31 * 32 - 64);
}

TEST(SharedMemory, NeverTouchesTheCacheHierarchy)
{
    KernelBuilder b("sh");
    const int r = b.sharedLoad(std::make_unique<UniformGen>(0));
    b.alu({r}, 1);
    const Kernel k = b.build(8);

    MemSystemConfig mc;
    mc.numPartitions = 2;
    MemorySystem mem(mc);
    LrrScheduler sched;
    SmConfig sc;
    sc.warpsPerSm = 2;
    sc.warpsPerBlock = 2;
    sc.jobsPerWarp = 1;
    Sm sm(0, sc, k, sched, nullptr, mem);
    Cycle now = 0;
    while (!sm.done() && now < 100000) {
        mem.tick(now);
        sm.tick(now);
        ++now;
    }
    EXPECT_EQ(sm.l1().stats().demandAccesses, 0u);
    EXPECT_EQ(sm.stats().sharedAccesses, 2u * 8);
}

TEST(SharedMemory, KernelTextRoundTrip)
{
    const Kernel k = parseKernelText(
        "kernel sh 4\n"
        "gen 0 uniform addr=0\n"
        "sload r0 gen=0 lanestride=8\n"
        "alu r1 r0\n");
    EXPECT_EQ(k.at(0).op, Opcode::kSharedLoad);
    EXPECT_EQ(k.at(0).laneStride, 8);

    std::ostringstream oss;
    writeKernelText(k, oss);
    const Kernel again = parseKernelText(oss.str());
    EXPECT_EQ(again.at(0).op, Opcode::kSharedLoad);
    EXPECT_EQ(again.at(0).laneStride, 8);
}

} // namespace
} // namespace apres
