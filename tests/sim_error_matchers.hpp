/**
 * @file
 * Shared assertion helper for the typed error model: run a callable
 * and require a SimError of a specific kind carrying a specific
 * message fragment. Used by every test that exercises rejection
 * paths (config validation, kernel text parsing, watchdog, auditor).
 */

#ifndef APRES_TESTS_SIM_ERROR_MATCHERS_HPP
#define APRES_TESTS_SIM_ERROR_MATCHERS_HPP

#include <string>
#include <typeinfo>
#include <utility>

#include <gtest/gtest.h>

#include "common/sim_error.hpp"

namespace apres {

/**
 * Run @p fn and expect a SimError of @p kind whose what() contains
 * @p substring. Reports precisely which expectation broke: nothing
 * thrown, wrong exception type, wrong kind, or wrong message.
 */
template <typename Fn>
void
expectSimError(SimErrorKind kind, const std::string& substring, Fn&& fn)
{
    try {
        std::forward<Fn>(fn)();
        ADD_FAILURE() << "expected SimError ("
                      << simErrorKindName(kind)
                      << " containing \"" << substring
                      << "\"), but nothing was thrown";
    } catch (const SimError& e) {
        EXPECT_EQ(e.kind(), kind)
            << "wrong error kind; full message: " << e.what();
        EXPECT_NE(std::string(e.what()).find(substring), std::string::npos)
            << "message \"" << e.what() << "\" does not contain \""
            << substring << "\"";
    } catch (const std::exception& e) {
        ADD_FAILURE() << "expected SimError, got "
                      << typeid(e).name() << ": " << e.what();
    }
}

} // namespace apres

#endif // APRES_TESTS_SIM_ERROR_MATCHERS_HPP
