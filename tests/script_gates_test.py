#!/usr/bin/env python3
"""ctest smoke tests for the repo's gate scripts.

Two modes, registered as separate ctest entries so failures localize:

  regen       scripts/regen_golden_traces.py must be idempotent: a run
              redirected into a scratch directory (--golden-dir) exits
              0 and reproduces the checked-in tests/golden files
              byte-for-byte. Any mismatch means the simulator and the
              committed goldens have drifted apart — exactly what the
              golden suite exists to catch — or that the regen script
              writes something other than what the tests compare.

  throughput  scripts/check_throughput.py must accept a healthy
              synthetic results/baseline pair (exit 0) and reject a
              doctored one: a throughput regression below the floor
              and an engine-stats divergence must both exit non-zero.
              A gate that silently passes regressions is worse than no
              gate.

usage: script_gates_test.py REPO_ROOT BUILD_DIR {regen|throughput}
"""

import filecmp
import json
import os
import subprocess
import sys
import tempfile


def run_regen(repo_root: str, build_dir: str) -> int:
    script = os.path.join(repo_root, "scripts", "regen_golden_traces.py")
    golden = os.path.join(repo_root, "tests", "golden")
    committed = sorted(
        name for name in os.listdir(golden) if name.endswith(".txt")
    )
    if not committed:
        print(f"FAIL: no committed golden files under {golden}")
        return 1

    with tempfile.TemporaryDirectory(prefix="apres_regen_") as scratch:
        for attempt in (1, 2):  # second run proves idempotence
            result = subprocess.run(
                [
                    sys.executable,
                    script,
                    "--build-dir",
                    build_dir,
                    "--golden-dir",
                    scratch,
                ],
                capture_output=True,
                text=True,
            )
            if result.returncode != 0:
                print(f"FAIL: regen run {attempt} exited "
                      f"{result.returncode}\n{result.stdout}"
                      f"{result.stderr}")
                return 1
            produced = sorted(os.listdir(scratch))
            if produced != committed:
                print(f"FAIL: run {attempt} produced {produced}, "
                      f"committed set is {committed}")
                return 1
            for name in committed:
                a = os.path.join(golden, name)
                b = os.path.join(scratch, name)
                if not filecmp.cmp(a, b, shallow=False):
                    print(f"FAIL: run {attempt}: regenerated {name} "
                          "differs from the checked-in golden — "
                          "simulator and goldens have drifted")
                    return 1
            print(f"ok: run {attempt} reproduced "
                  f"{len(committed)} golden files exactly")
    return 0


def run_throughput(repo_root: str) -> int:
    script = os.path.join(repo_root, "scripts", "check_throughput.py")
    healthy = {
        "hwThreads": 8,
        "scenarios": [
            {
                "name": "KM-fullchip",
                "statsIdentical": True,
                "ffCyclesPerSec": 1_000_000.0,
                "parCyclesPerSec": 1_500_000.0,
                "speedup": 4.0,
                "parSpeedup": 1.5,
                "shards": 4,
            }
        ],
    }
    baseline = {
        "scenarios": {"KM-fullchip": 1_000_000.0},
        "parallelScenarios": {"KM-fullchip": 1_400_000.0},
        "parSpeedupFloors": {"KM-fullchip": 1.0},
    }

    def check(label, results, expect_failure):
        with tempfile.TemporaryDirectory(prefix="apres_gate_") as d:
            rpath = os.path.join(d, "results.json")
            bpath = os.path.join(d, "baseline.json")
            with open(rpath, "w") as f:
                json.dump(results, f)
            with open(bpath, "w") as f:
                json.dump(baseline, f)
            result = subprocess.run(
                [sys.executable, script, rpath, bpath],
                capture_output=True,
                text=True,
            )
        failed = result.returncode != 0
        if failed != expect_failure:
            want = "non-zero" if expect_failure else "zero"
            print(f"FAIL: {label}: expected {want} exit, got "
                  f"{result.returncode}\n{result.stdout}{result.stderr}")
            return 1
        print(f"ok: {label}: exit {result.returncode} as expected")
        return 0

    regressed = json.loads(json.dumps(healthy))
    regressed["scenarios"][0]["ffCyclesPerSec"] = 100_000.0  # −90%
    diverged = json.loads(json.dumps(healthy))
    diverged["scenarios"][0]["statsIdentical"] = False

    rc = check("healthy results pass", healthy, expect_failure=False)
    rc |= check("doctored throughput regression trips the gate",
                regressed, expect_failure=True)
    rc |= check("engine-stats divergence trips the gate",
                diverged, expect_failure=True)
    return rc


def main() -> int:
    if len(sys.argv) != 4 or sys.argv[3] not in ("regen", "throughput"):
        print(__doc__, file=sys.stderr)
        return 2
    repo_root, build_dir, mode = sys.argv[1:4]
    if mode == "regen":
        return run_regen(repo_root, build_dir)
    return run_throughput(repo_root)


if __name__ == "__main__":
    sys.exit(main())
