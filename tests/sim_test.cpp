/**
 * @file
 * End-to-end simulator tests: determinism, stat invariants, every
 * scheduler/prefetcher combination, and RunResult reporting.
 */

#include <gtest/gtest.h>

#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

GpuConfig
smallGpu(SchedulerKind sched = SchedulerKind::kLrr,
         PrefetcherKind pf = PrefetcherKind::kNone)
{
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 16;
    cfg.sm.warpsPerBlock = 16;
    cfg.sm.jobsPerWarp = 2;
    cfg.scheduler = sched;
    cfg.prefetcher = pf;
    cfg.maxCycles = 2'000'000;
    return cfg;
}

TEST(Sim, CompletesAndReportsBasics)
{
    const Workload wl = makeWorkload("SP", 0.1);
    const RunResult r = simulate(smallGpu(), wl.kernel);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.l1.demandAccesses, 0u);
}

TEST(Sim, DeterministicAcrossRuns)
{
    const Workload wl = makeWorkload("BFS", 0.1);
    const RunResult a = simulate(smallGpu(), wl.kernel);
    const RunResult b = simulate(smallGpu(), wl.kernel);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1.demandHits, b.l1.demandHits);
    EXPECT_EQ(a.l1.demandMisses, b.l1.demandMisses);
    EXPECT_EQ(a.traffic.interconnectBytes(), b.traffic.interconnectBytes());
}

TEST(Sim, HitMissInvariants)
{
    const Workload wl = makeWorkload("SPMV", 0.1);
    const RunResult r = simulate(smallGpu(), wl.kernel);
    EXPECT_EQ(r.l1.demandHits + r.l1.demandMisses, r.l1.demandAccesses);
    EXPECT_EQ(r.l1.hitAfterHit + r.l1.hitAfterMiss, r.l1.demandHits);
    EXPECT_EQ(r.l1.coldMisses + r.l1.capacityConflictMisses,
              r.l1.demandMisses);
}

TEST(Sim, AllSchedulerPrefetcherCombosRun)
{
    const Workload wl = makeWorkload("LUD", 0.05);
    const SchedulerKind scheds[] = {
        SchedulerKind::kLrr,  SchedulerKind::kGto, SchedulerKind::kCcws,
        SchedulerKind::kMascar, SchedulerKind::kPa, SchedulerKind::kLaws,
    };
    const PrefetcherKind pfs[] = {PrefetcherKind::kNone,
                                  PrefetcherKind::kStr,
                                  PrefetcherKind::kSld};
    for (const auto sched : scheds) {
        for (const auto pf : pfs) {
            const RunResult r = simulate(smallGpu(sched, pf), wl.kernel);
            EXPECT_TRUE(r.completed)
                << schedulerName(sched) << "+" << prefetcherName(pf);
        }
    }
    // SAP additionally requires LAWS.
    const RunResult apres = simulate(
        smallGpu(SchedulerKind::kLaws, PrefetcherKind::kSap), wl.kernel);
    EXPECT_TRUE(apres.completed);
}

TEST(Sim, SapWithoutLawsIsFatal)
{
    const Workload wl = makeWorkload("SP", 0.05);
    EXPECT_EXIT(
        simulate(smallGpu(SchedulerKind::kGto, PrefetcherKind::kSap),
                 wl.kernel),
        testing::ExitedWithCode(1), "");
}

TEST(Sim, SameInstructionCountAcrossSchedulers)
{
    // Scheduling policy changes timing, never the executed work.
    const Workload wl = makeWorkload("SRAD", 0.05);
    const RunResult lrr = simulate(smallGpu(SchedulerKind::kLrr), wl.kernel);
    const RunResult gto = simulate(smallGpu(SchedulerKind::kGto), wl.kernel);
    const RunResult laws =
        simulate(smallGpu(SchedulerKind::kLaws), wl.kernel);
    EXPECT_EQ(lrr.instructions, gto.instructions);
    EXPECT_EQ(lrr.instructions, laws.instructions);
}

TEST(Sim, PrefetchingNeverChangesInstructionCount)
{
    const Workload wl = makeWorkload("NW", 0.05);
    const RunResult base = simulate(smallGpu(), wl.kernel);
    const RunResult str =
        simulate(smallGpu(SchedulerKind::kLrr, PrefetcherKind::kStr),
                 wl.kernel);
    EXPECT_EQ(base.instructions, str.instructions);
}

TEST(Sim, ApresLabel)
{
    GpuConfig cfg;
    cfg.useApres();
    EXPECT_EQ(cfg.label(), "APRES");
    cfg.scheduler = SchedulerKind::kCcws;
    cfg.prefetcher = PrefetcherKind::kStr;
    EXPECT_EQ(cfg.label(), "CCWS+STR");
    cfg.prefetcher = PrefetcherKind::kNone;
    EXPECT_EQ(cfg.label(), "CCWS");
}

TEST(Sim, MaxCyclesCapsRun)
{
    const Workload wl = makeWorkload("KM", 1.0);
    GpuConfig cfg = smallGpu();
    cfg.maxCycles = 100;
    const RunResult r = simulate(cfg, wl.kernel);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.cycles, 100u);
}

TEST(Sim, StatSetContainsHeadlineMetrics)
{
    const Workload wl = makeWorkload("SP", 0.05);
    const RunResult r = simulate(smallGpu(), wl.kernel);
    const StatSet s = r.toStatSet();
    EXPECT_TRUE(s.has("sim.ipc"));
    EXPECT_TRUE(s.has("l1.missRate"));
    EXPECT_TRUE(s.has("mem.avgLoadLatency"));
    EXPECT_TRUE(s.has("energy.total"));
    EXPECT_DOUBLE_EQ(s.get("sim.cycles"), static_cast<double>(r.cycles));
}

TEST(Sim, EnergyPositiveAndStructureOverheadSmall)
{
    const Workload wl = makeWorkload("SRAD", 0.1);
    GpuConfig cfg = smallGpu(SchedulerKind::kLaws, PrefetcherKind::kSap);
    const RunResult r = simulate(cfg, wl.kernel);
    EXPECT_GT(r.energy.total(), 0.0);
    // The paper: APRES's added blocks stay below 3% of total energy.
    EXPECT_LT(r.energy.structureFraction(), 0.03);
}

TEST(Sim, StepAndCollectIncremental)
{
    const Workload wl = makeWorkload("SP", 0.1);
    GpuConfig cfg = smallGpu();
    Gpu gpu(cfg, wl.kernel);
    gpu.step(100);
    const RunResult early = gpu.collect();
    EXPECT_EQ(early.cycles, 100u);
    gpu.step(100);
    const RunResult later = gpu.collect();
    EXPECT_GE(later.instructions, early.instructions);
}

TEST(Sim, LawsStatsExposedUnderApres)
{
    const Workload wl = makeWorkload("SRAD", 0.1);
    GpuConfig cfg = smallGpu();
    cfg.useApres();
    const RunResult r = simulate(cfg, wl.kernel);
    EXPECT_GT(r.laws.groupsFormed, 0u);
    EXPECT_GT(r.sap.groupMissesReceived, 0u);
}

TEST(Sim, LargerL1ReducesMissRate)
{
    const Workload wl = makeWorkload("KM", 0.2);
    GpuConfig small = smallGpu();
    GpuConfig big = smallGpu();
    big.sm.l1.sizeBytes = 32 * 1024 * 1024; // the paper's Fig. 2 probe
    const RunResult r_small = simulate(small, wl.kernel);
    const RunResult r_big = simulate(big, wl.kernel);
    EXPECT_LT(r_big.l1.missRate(), r_small.l1.missRate());
    EXPECT_LE(r_big.cycles, r_small.cycles);
}

} // namespace
} // namespace apres
