/**
 * @file
 * End-to-end simulator tests: determinism, stat invariants, every
 * scheduler/prefetcher combination, and RunResult reporting.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/gpu.hpp"
#include "sim/policy_registry.hpp"
#include "sim/runner.hpp"
#include "sim/timeline.hpp"
#include "sim_error_matchers.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

GpuConfig
smallGpu(const std::string& sched = "lrr", const std::string& pf = "none")
{
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 16;
    cfg.sm.warpsPerBlock = 16;
    cfg.sm.jobsPerWarp = 2;
    cfg.scheduler = sched;
    cfg.prefetcher = pf;
    cfg.maxCycles = 2'000'000;
    return cfg;
}

TEST(Sim, CompletesAndReportsBasics)
{
    const Workload wl = makeWorkload("SP", 0.1);
    const RunResult r = simulate(smallGpu(), wl.kernel);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.l1.demandAccesses, 0u);
}

TEST(Sim, DeterministicAcrossRuns)
{
    const Workload wl = makeWorkload("BFS", 0.1);
    const RunResult a = simulate(smallGpu(), wl.kernel);
    const RunResult b = simulate(smallGpu(), wl.kernel);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1.demandHits, b.l1.demandHits);
    EXPECT_EQ(a.l1.demandMisses, b.l1.demandMisses);
    EXPECT_EQ(a.traffic.interconnectBytes(), b.traffic.interconnectBytes());
}

TEST(Sim, HitMissInvariants)
{
    const Workload wl = makeWorkload("SPMV", 0.1);
    const RunResult r = simulate(smallGpu(), wl.kernel);
    EXPECT_EQ(r.l1.demandHits + r.l1.demandMisses, r.l1.demandAccesses);
    EXPECT_EQ(r.l1.hitAfterHit + r.l1.hitAfterMiss, r.l1.demandHits);
    EXPECT_EQ(r.l1.coldMisses + r.l1.capacityConflictMisses,
              r.l1.demandMisses);
}

TEST(Sim, AllSchedulerPrefetcherCombosRun)
{
    const Workload wl = makeWorkload("LUD", 0.05);
    // Every registered combination must run; SAP pairs only with LAWS.
    for (const std::string& sched : schedulerNames()) {
        for (const std::string& pf : prefetcherNames()) {
            if (pf == "sap" && sched != "laws")
                continue;
            const RunResult r = simulate(smallGpu(sched, pf), wl.kernel);
            EXPECT_TRUE(r.completed) << sched << "+" << pf;
        }
    }
}

TEST(Sim, SapWithoutLawsIsFatal)
{
    const Workload wl = makeWorkload("SP", 0.05);
    expectSimError(SimErrorKind::kConfig, "requires the LAWS scheduler",
                   [&] { simulate(smallGpu("gto", "sap"), wl.kernel); });
}

TEST(Sim, UnknownSchedulerIsFatal)
{
    const Workload wl = makeWorkload("SP", 0.05);
    expectSimError(SimErrorKind::kConfig, "unknown scheduler",
                   [&] { simulate(smallGpu("fancy"), wl.kernel); });
}

TEST(Sim, SameInstructionCountAcrossSchedulers)
{
    // Scheduling policy changes timing, never the executed work.
    const Workload wl = makeWorkload("SRAD", 0.05);
    const RunResult lrr = simulate(smallGpu("lrr"), wl.kernel);
    const RunResult gto = simulate(smallGpu("gto"), wl.kernel);
    const RunResult laws = simulate(smallGpu("laws"), wl.kernel);
    EXPECT_EQ(lrr.instructions, gto.instructions);
    EXPECT_EQ(lrr.instructions, laws.instructions);
}

TEST(Sim, PrefetchingNeverChangesInstructionCount)
{
    const Workload wl = makeWorkload("NW", 0.05);
    const RunResult base = simulate(smallGpu(), wl.kernel);
    const RunResult str = simulate(smallGpu("lrr", "str"), wl.kernel);
    EXPECT_EQ(base.instructions, str.instructions);
}

TEST(Sim, ApresLabel)
{
    GpuConfig cfg;
    cfg.useApres();
    EXPECT_EQ(cfg.label(), "APRES");
    cfg.scheduler = "ccws";
    cfg.prefetcher = "str";
    EXPECT_EQ(cfg.label(), "CCWS+STR");
    cfg.prefetcher = "none";
    EXPECT_EQ(cfg.label(), "CCWS");
}

TEST(Sim, MaxCyclesCapsRun)
{
    const Workload wl = makeWorkload("KM", 1.0);
    GpuConfig cfg = smallGpu();
    cfg.maxCycles = 100;
    const RunResult r = simulate(cfg, wl.kernel);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.cycles, 100u);
}

TEST(Sim, StatSetContainsHeadlineMetrics)
{
    const Workload wl = makeWorkload("SP", 0.05);
    const RunResult r = simulate(smallGpu(), wl.kernel);
    const StatSet s = r.toStatSet();
    EXPECT_TRUE(s.has("sim.ipc"));
    EXPECT_TRUE(s.has("l1.missRate"));
    EXPECT_TRUE(s.has("mem.avgLoadLatency"));
    EXPECT_TRUE(s.has("energy.total"));
    EXPECT_DOUBLE_EQ(s.get("sim.cycles"), static_cast<double>(r.cycles));
}

TEST(Sim, EnergyPositiveAndStructureOverheadSmall)
{
    const Workload wl = makeWorkload("SRAD", 0.1);
    GpuConfig cfg = smallGpu("laws", "sap");
    const RunResult r = simulate(cfg, wl.kernel);
    EXPECT_GT(r.energy.total(), 0.0);
    // The paper: APRES's added blocks stay below 3% of total energy.
    EXPECT_LT(r.energy.structureFraction(), 0.03);
}

TEST(Sim, StepAndCollectIncremental)
{
    const Workload wl = makeWorkload("SP", 0.1);
    GpuConfig cfg = smallGpu();
    Gpu gpu(cfg, wl.kernel);
    gpu.step(100);
    const RunResult early = gpu.collect();
    EXPECT_EQ(early.cycles, 100u);
    gpu.step(100);
    const RunResult later = gpu.collect();
    EXPECT_GE(later.instructions, early.instructions);
}

TEST(Sim, LawsStatsExposedUnderApres)
{
    const Workload wl = makeWorkload("SRAD", 0.1);
    GpuConfig cfg = smallGpu();
    cfg.useApres();
    const RunResult r = simulate(cfg, wl.kernel);
    EXPECT_GT(r.policy.get("laws.groupsFormed"), 0.0);
    EXPECT_GT(r.policy.get("sap.groupMissesReceived"), 0.0);
}

TEST(Sim, RunsMoreThan64WarpsPerSm)
{
    // Warp sets are dynamically sized WarpMasks now: a machine wider
    // than 64 warps per SM must build and run (the old 64-bit masks
    // forced a constructor rejection). APRES policies exercise the
    // widest mask paths (WGT groups, SAP group walks).
    const Workload wl = makeWorkload("SP", 0.05);
    GpuConfig cfg = smallGpu();
    cfg.sm.warpsPerSm = 80;
    cfg.useApres();
    const RunResult r = simulate(cfg, wl.kernel);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.instructions, 0u);
}

TEST(Sim, RejectsMoreThan64WarpsPerBlock)
{
    // Barrier participant masks are per-block 64-bit lane masks baked
    // into Instruction, so blocks wider than 64 warps stay rejected.
    const Workload wl = makeWorkload("SP", 0.05);
    GpuConfig cfg = smallGpu();
    cfg.sm.warpsPerSm = 80;
    cfg.sm.warpsPerBlock = 80;
    expectSimError(SimErrorKind::kConfig, "64-lane barrier participant",
                   [&] { simulate(cfg, wl.kernel); });
}

/**
 * Bitwise-identical comparison of two RunResults. Doubles are compared
 * with EXPECT_EQ deliberately: identical runs execute identical
 * floating-point operation sequences, so even the derived ratios must
 * match bit for bit.
 */
void
expectIdenticalResults(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l1.demandAccesses, b.l1.demandAccesses);
    EXPECT_EQ(a.l1.demandHits, b.l1.demandHits);
    EXPECT_EQ(a.l1.demandMisses, b.l1.demandMisses);
    EXPECT_EQ(a.l1.earlyEvictions, b.l1.earlyEvictions);
    EXPECT_EQ(a.l2.demandAccesses, b.l2.demandAccesses);
    EXPECT_EQ(a.l2.demandMisses, b.l2.demandMisses);
    EXPECT_EQ(a.traffic.interconnectBytes(), b.traffic.interconnectBytes());
    EXPECT_EQ(a.avgLoadLatency, b.avgLoadLatency);
    EXPECT_EQ(a.avgMissLatency, b.avgMissLatency);
    EXPECT_EQ(a.prefetchesRequested, b.prefetchesRequested);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.idleCycles, b.idleCycles);
    EXPECT_EQ(a.mshrReplays, b.mshrReplays);
    EXPECT_EQ(a.energy.total(), b.energy.total());

    // Policy-reported stats must agree key for key.
    ASSERT_EQ(a.policy.entries().size(), b.policy.entries().size());
    for (const auto& [key, value] : a.policy.entries())
        EXPECT_EQ(value, b.policy.get(key)) << "policy stat " << key;

    // Catch-all: the flattened stat sets must agree on every key.
    const auto sa = a.toStatSet().entries();
    const auto sb = b.toStatSet().entries();
    ASSERT_EQ(sa.size(), sb.size());
    for (const auto& [key, value] : sa)
        EXPECT_EQ(value, sb.at(key)) << "stat " << key << " diverged";
}

TEST(Determinism, SameSeedTwiceIdenticalRunResult)
{
    const Workload wl = makeWorkload("BFS", 0.1);
    GpuConfig cfg = smallGpu("laws", "sap");
    cfg.seed = 12345;
    const RunResult a = simulate(cfg, wl.kernel);
    const RunResult b = simulate(cfg, wl.kernel);
    expectIdenticalResults(a, b);
}

TEST(Determinism, DeriveJobSeedIsPureAndPerJob)
{
    EXPECT_EQ(deriveJobSeed(7, 0), deriveJobSeed(7, 0));
    EXPECT_NE(deriveJobSeed(7, 0), deriveJobSeed(7, 1));
    EXPECT_NE(deriveJobSeed(7, 0), deriveJobSeed(8, 0));
    EXPECT_NE(deriveJobSeed(7, 1), deriveJobSeed(8, 0));
}

TEST(Determinism, DefaultJobCountEnvOverride)
{
    ASSERT_EQ(setenv("APRES_BENCH_JOBS", "3", 1), 0);
    EXPECT_EQ(defaultJobCount(), 3);
    ASSERT_EQ(setenv("APRES_BENCH_JOBS", "zero", 1), 0);
    EXPECT_GE(defaultJobCount(), 1); // bad value: hardware fallback
    ASSERT_EQ(setenv("APRES_BENCH_JOBS", "-2", 1), 0);
    EXPECT_GE(defaultJobCount(), 1);
    ASSERT_EQ(unsetenv("APRES_BENCH_JOBS"), 0);
    EXPECT_GE(defaultJobCount(), 1);
}

/** The runner job list used by the parallel-vs-sequential tests. */
std::vector<SweepJob>
sweepTestJobs()
{
    const char* scheds[] = {"lrr", "gto", "laws"};
    std::vector<SweepJob> jobs;
    for (const char* app : {"BFS", "KM", "NW"}) {
        auto workload =
            std::make_shared<const Workload>(makeWorkload(app, 0.05));
        const Kernel* kernel = &workload->kernel;
        for (const char* sched : scheds) {
            SweepJob job;
            job.label = std::string(app) + "/" + sched;
            job.config = smallGpu(sched);
            job.kernel = std::shared_ptr<const Kernel>(workload, kernel);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(Runner, ParallelIsBitIdenticalToSequential)
{
    RunnerOptions seq;
    seq.threads = 1;
    SweepRunner sequential(seq);
    for (SweepJob& job : sweepTestJobs())
        sequential.submit(std::move(job));
    const std::vector<SweepResult> a = sequential.runAll();

    RunnerOptions par;
    par.threads = 8;
    SweepRunner parallel(par);
    for (SweepJob& job : sweepTestJobs())
        parallel.submit(std::move(job));
    const std::vector<SweepResult> b = parallel.runAll();

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label, b[i].label) << "ordering not stable at " << i;
        EXPECT_EQ(a[i].seed, b[i].seed);
        expectIdenticalResults(a[i].result, b[i].result);
    }
}

TEST(Runner, ResultsInSubmissionOrderWithDerivedSeeds)
{
    RunnerOptions opts;
    opts.threads = 4;
    opts.baseSeed = 99;
    SweepRunner runner(opts);
    auto workload = std::make_shared<const Workload>(makeWorkload("SP", 0.05));
    const Kernel* kernel = &workload->kernel;
    for (int i = 0; i < 6; ++i) {
        runner.submit("job" + std::to_string(i), smallGpu(),
                      std::shared_ptr<const Kernel>(workload, kernel));
    }
    const std::vector<SweepResult> results = runner.runAll();
    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].label, "job" + std::to_string(i));
        EXPECT_EQ(results[i].seed, deriveJobSeed(99, i));
        EXPECT_TRUE(results[i].result.completed);
        EXPECT_GE(results[i].wallSeconds, 0.0);
    }
}

TEST(Runner, InspectHookRunsPerJob)
{
    RunnerOptions opts;
    opts.threads = 4;
    SweepRunner runner(opts);
    auto workload = std::make_shared<const Workload>(makeWorkload("SP", 0.05));
    const Kernel* kernel = &workload->kernel;
    std::vector<std::uint64_t> l1_accesses(4, 0);
    for (int i = 0; i < 4; ++i) {
        SweepJob job;
        job.label = "inspect" + std::to_string(i);
        job.config = smallGpu();
        job.kernel = std::shared_ptr<const Kernel>(workload, kernel);
        auto* slot = &l1_accesses[static_cast<std::size_t>(i)];
        job.inspect = [slot](const Gpu& gpu, RunResult& r) {
            *slot = r.l1.demandAccesses;
            EXPECT_TRUE(gpu.done());
        };
        runner.submit(std::move(job));
    }
    const std::vector<SweepResult> results = runner.runAll();
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(l1_accesses[i], results[i].result.l1.demandAccesses);
}

TEST(Timeline, FinalPartialIntervalIsKept)
{
    // Regression: the recorder used to step the Gpu to the next full
    // interval boundary even after the kernel drained (and straight
    // past maxCycles when the cap fell mid-interval), so the final
    // partial interval was diluted into dead cycles and the
    // timeline-driven cycle count disagreed with Gpu::run().
    const Workload wl = makeWorkload("SP", 0.05);
    GpuConfig cfg = smallGpu();
    const RunResult reference = simulate(cfg, wl.kernel);
    ASSERT_TRUE(reference.completed);

    // An interval that cannot divide the run evenly: prime width.
    Gpu gpu(cfg, wl.kernel);
    TimelineRecorder recorder(701);
    const RunResult r = recorder.record(gpu);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.cycles, reference.cycles);
    EXPECT_EQ(r.instructions, reference.instructions);
    ASSERT_FALSE(recorder.samples().empty());
    // The tail row ends exactly at the finish cycle, not at the next
    // interval boundary.
    EXPECT_EQ(recorder.samples().back().cycleEnd, r.cycles);
    // Interval instruction counts (ipc x actual width) sum to the
    // total: no instruction was lost or double-counted by the tail.
    double sum = 0.0;
    Cycle prev = 0;
    for (const TimelineSample& s : recorder.samples()) {
        ASSERT_GT(s.cycleEnd, prev);
        sum += s.intervalIpc * static_cast<double>(s.cycleEnd - prev);
        prev = s.cycleEnd;
    }
    EXPECT_NEAR(sum, static_cast<double>(r.instructions), 1e-6);
}

TEST(Timeline, MaxCyclesCapEndsMidIntervalWithoutOvershoot)
{
    const Workload wl = makeWorkload("KM", 0.2);
    GpuConfig cfg = smallGpu();
    cfg.maxCycles = 1234; // not a multiple of the interval below
    Gpu gpu(cfg, wl.kernel);
    TimelineRecorder recorder(500);
    const RunResult r = recorder.record(gpu);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.cycles, 1234u);
    ASSERT_FALSE(recorder.samples().empty());
    // Rows at 500, 1000, then the clamped 234-cycle tail.
    ASSERT_EQ(recorder.samples().size(), 3u);
    EXPECT_EQ(recorder.samples()[0].cycleEnd, 500u);
    EXPECT_EQ(recorder.samples()[1].cycleEnd, 1000u);
    EXPECT_EQ(recorder.samples().back().cycleEnd, 1234u);
}

TEST(Sim, LargerL1ReducesMissRate)
{
    const Workload wl = makeWorkload("KM", 0.2);
    GpuConfig small = smallGpu();
    GpuConfig big = smallGpu();
    big.sm.l1.sizeBytes = 32 * 1024 * 1024; // the paper's Fig. 2 probe
    const RunResult r_small = simulate(small, wl.kernel);
    const RunResult r_big = simulate(big, wl.kernel);
    EXPECT_LT(r_big.l1.missRate(), r_small.l1.missRate());
    EXPECT_LE(r_big.cycles, r_small.cycles);
}

} // namespace
} // namespace apres
