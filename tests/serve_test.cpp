/**
 * @file
 * Tests for the simulation service: cache-key anatomy (semantic vs
 * observation keys, kernel identity, schema fingerprint), the
 * two-tier ResultCache, protocol parsing, and the daemon end to end —
 * including the headline guarantee that a repeated batch is answered
 * bitwise-identically from cache with zero re-simulation.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/json.hpp"
#include "common/json_value.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "sim/config_registry.hpp"
#include "sim_error_matchers.hpp"

namespace apres {
namespace {

namespace fs = std::filesystem;

/** A fresh, empty scratch directory unique to @p tag and this process. */
std::string
scratchDir(const std::string& tag)
{
    const fs::path dir = fs::temp_directory_path() /
        ("apres_serve_test_" + std::to_string(::getpid()) + "_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::map<std::string, std::string>
semanticSnapshot(const std::vector<std::pair<std::string, std::string>>&
                     overrides = {})
{
    GpuConfig cfg;
    ConfigRegistry registry(cfg);
    for (const auto& [key, value] : overrides)
        registry.set(key, value);
    return registry.semanticSnapshot();
}

/** Build a run-request document from job specs. */
std::string
runRequest(const std::vector<ServeJobSpec>& jobs,
           double timeout_seconds = 0.0, int retries = 0)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.field("type", "run");
    if (timeout_seconds > 0.0 || retries > 0) {
        json.beginObject("options");
        if (timeout_seconds > 0.0)
            json.field("timeoutSeconds", timeout_seconds);
        if (retries > 0)
            json.field("retries", static_cast<std::uint64_t>(retries));
        json.endObject();
    }
    json.beginArray("jobs");
    for (const ServeJobSpec& job : jobs)
        writeServeJob(json, job);
    json.endArray();
    json.endObject();
    json.finish();
    return os.str();
}

/** A cheap KM job with the given L1 size (the semantic knob we vary). */
ServeJobSpec
kmJob(std::uint64_t l1_bytes, double scale = 0.05)
{
    ServeJobSpec job;
    job.workload = "KM";
    job.scale = scale;
    job.label = "km-l1-" + std::to_string(l1_bytes);
    job.overrides.emplace_back("l1.sizeBytes", std::to_string(l1_bytes));
    job.overrides.emplace_back("maxCycles", "2000000");
    return job;
}

/**
 * Extract the raw text of the "result" value of runs[index] from a
 * response document — string-aware brace matching, so the comparison
 * between two responses is genuinely bitwise, not parse-and-compare.
 */
std::string
rawResultText(const std::string& response, std::size_t index)
{
    const std::string marker = "\"result\": {";
    std::size_t pos = 0;
    for (std::size_t skipped = 0; skipped <= index; ++skipped) {
        pos = response.find(marker, pos);
        if (pos == std::string::npos)
            ADD_FAILURE() << "runs[" << index << "] has no result object";
        if (pos == std::string::npos)
            return "";
        pos += marker.size();
    }
    const std::size_t start = pos - 1; // at the '{'
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = start; i < response.size(); ++i) {
        const char c = response[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
        } else if (c == '"') {
            in_string = true;
        } else if (c == '{') {
            ++depth;
        } else if (c == '}') {
            if (--depth == 0)
                return response.substr(start, i - start + 1);
        }
    }
    ADD_FAILURE() << "unbalanced result object";
    return "";
}

// --------------------------------------------------------------------
// Cache-key anatomy.
// --------------------------------------------------------------------

TEST(CacheKey, SemanticOverrideChangesKey)
{
    ServeJobSpec job;
    job.workload = "KM";
    const std::string kfp = kernelFingerprint(job);
    const std::string base =
        computeCacheKey("fp", kfp, semanticSnapshot());
    const std::string bigger_l1 = computeCacheKey(
        "fp", kfp, semanticSnapshot({{"l1.sizeBytes", "65536"}}));
    const std::string other_seed = computeCacheKey(
        "fp", kfp, semanticSnapshot({{"seed", "12345"}}));
    EXPECT_NE(base, bigger_l1);
    EXPECT_NE(base, other_seed);
    EXPECT_NE(bigger_l1, other_seed);
    EXPECT_EQ(base.size(), 32u);
}

TEST(CacheKey, ObservationKeysDoNotChangeKey)
{
    ServeJobSpec job;
    job.workload = "KM";
    const std::string kfp = kernelFingerprint(job);
    const std::string base =
        computeCacheKey("fp", kfp, semanticSnapshot());
    // Tracing, metrics, auditing and fast-forward are observation-only:
    // they never change what a run computes (proven by the
    // ff-equivalence and observation-purity suites), so they must not
    // fragment the cache.
    const std::vector<std::pair<std::string, std::string>> observation = {
        {"sim.trace", "true"},
        {"sim.traceFile", "/tmp/t.json"},
        {"sim.traceBufferEvents", "1234"},
        {"sim.metrics", "true"},
        {"sim.audit", "true"},
        {"sim.auditInterval", "77"},
        {"sim.fastForward", "false"},
        {"sim.watchdogCycles", "123456"},
        // The parallel engine is bitwise identical to serial for every
        // shard count (equivalence suite), so the shard count is an
        // execution knob, not a semantic one.
        {"sim.shards", "4"},
        {"sim.shards", "0"},
    };
    for (const auto& kv : observation) {
        EXPECT_EQ(base, computeCacheKey("fp", kfp, semanticSnapshot({kv})))
            << kv.first;
    }
}

TEST(CacheKey, FingerprintAndKernelIdentityChangeKey)
{
    ServeJobSpec km;
    km.workload = "KM";
    ServeJobSpec km2 = km;
    km2.scale = 2.0;
    ServeJobSpec text;
    text.kernelText = "kernel t 4\ngen 0 uniform addr=4096\n"
                      "load r0 gen=0\n";

    const auto snapshot = semanticSnapshot();
    const std::string a =
        computeCacheKey("fp-a", kernelFingerprint(km), snapshot);
    EXPECT_NE(a, computeCacheKey("fp-b", kernelFingerprint(km), snapshot));
    EXPECT_NE(a, computeCacheKey("fp-a", kernelFingerprint(km2), snapshot));
    EXPECT_NE(a, computeCacheKey("fp-a", kernelFingerprint(text), snapshot));

    EXPECT_EQ(kernelFingerprint(km), "workload:KM@1");
    EXPECT_EQ(kernelFingerprint(km2), "workload:KM@2");
    EXPECT_EQ(kernelFingerprint(text).rfind("text:", 0), 0u);
}

TEST(CacheKey, GoldenKeysArePinned)
{
    // Hard-coded expected keys for two known configurations. Every
    // deployed cache is addressed by these values: if ContentHasher,
    // the semantic snapshot (a key added, renamed or re-kinded), the
    // kernel fingerprint format or the serialization order drifts,
    // every existing cache entry is silently orphaned and re-simulated.
    // This test turns that silent invalidation into a loud failure —
    // when the change is intentional, bump kStatsSchemaVersion and
    // regenerate these literals.
    {
        // Config 1: all defaults, the named KM workload at scale 1.
        ServeJobSpec km;
        km.workload = "KM";
        EXPECT_EQ(computeCacheKey("apres-results-v1",
                                  kernelFingerprint(km),
                                  semanticSnapshot()),
                  "96f657c080e49586628d11e1a663a0f2");
    }
    {
        // Config 2: the APRES stack with a 64 KiB L1 and a pinned
        // seed over an inline kernel (text fingerprint path).
        ServeJobSpec text;
        text.kernelText = "kernel t 4\ngen 0 uniform addr=0x1000\n"
                          "load r0 gen=0\n";
        EXPECT_EQ(kernelFingerprint(text),
                  "text:25c5583523273acb4cb51887e8c7a1d3");
        EXPECT_EQ(computeCacheKey("apres-results-v1",
                                  kernelFingerprint(text),
                                  semanticSnapshot({
                                      {"scheduler", "laws"},
                                      {"prefetcher", "sap"},
                                      {"l1.sizeBytes", "65536"},
                                      {"seed", "12345"},
                                  })),
                  "7086126018b80f8546648932dff9d5cf");
    }
}

// --------------------------------------------------------------------
// ResultCache tiers.
// --------------------------------------------------------------------

TEST(ResultCache, MemoryTierHitsAndMisses)
{
    ResultCache cache; // memory-only
    EXPECT_FALSE(cache.lookup("k1").has_value());
    cache.store("k1", "{\"x\": 1}");
    const auto hit = cache.lookup("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "{\"x\": 1}");
    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.memoryHits, 1u);
    EXPECT_EQ(stats.diskHits, 0u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(cache.memoryEntries(), 1u);
}

TEST(ResultCache, DiskTierPersistsAcrossInstances)
{
    const std::string dir = scratchDir("disk_persist");
    {
        ResultCache cache(dir);
        cache.store("deadbeef", "{\"ipc\": 1.5}");
    }
    ResultCache warm(dir);
    EXPECT_EQ(warm.memoryEntries(), 0u);
    const auto hit = warm.lookup("deadbeef");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "{\"ipc\": 1.5}");
    EXPECT_EQ(warm.stats().diskHits, 1u);
    // The disk hit was promoted: the second lookup is a memory hit.
    ASSERT_TRUE(warm.lookup("deadbeef").has_value());
    EXPECT_EQ(warm.stats().memoryHits, 1u);
}

TEST(ResultCache, CorruptDiskEntryIsDiscardedNotServed)
{
    const std::string dir = scratchDir("disk_corrupt");
    const fs::path bad = fs::path(dir) / "0123456789abcdef.json";
    std::ofstream(bad) << "{\"truncated\": ";
    ResultCache cache(dir);
    EXPECT_FALSE(cache.lookup("0123456789abcdef").has_value());
    EXPECT_EQ(cache.stats().invalidDiskEntries, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    // The poisoned file is gone; a later store works normally.
    EXPECT_FALSE(fs::exists(bad));
    cache.store("0123456789abcdef", "{\"ok\": true}");
    EXPECT_TRUE(cache.lookup("0123456789abcdef").has_value());
}

// --------------------------------------------------------------------
// Protocol parsing.
// --------------------------------------------------------------------

TEST(Protocol, ParsesControlRequests)
{
    EXPECT_EQ(parseServeRequest("{\"type\": \"ping\"}").type,
              ServeRequest::Type::kPing);
    EXPECT_EQ(parseServeRequest("{\"type\": \"stats\"}").type,
              ServeRequest::Type::kStats);
    EXPECT_EQ(parseServeRequest("{\"type\": \"shutdown\"}").type,
              ServeRequest::Type::kShutdown);
}

TEST(Protocol, ParsesRunRequestWithOptionsAndOverrides)
{
    const ServeRequest req = parseServeRequest(
        "{\"type\": \"run\","
        " \"options\": {\"timeoutSeconds\": 2.5, \"retries\": 3},"
        " \"jobs\": [{\"workload\": \"KM\", \"scale\": 0.5,"
        "   \"overrides\": {\"l1.sizeBytes\": 65536,"
        "                   \"scheduler\": \"laws\","
        "                   \"dram.rowBufferModel\": true,"
        "                   \"seed\": 18446744073709551615}}]}");
    EXPECT_EQ(req.type, ServeRequest::Type::kRun);
    EXPECT_DOUBLE_EQ(req.timeoutSeconds, 2.5);
    EXPECT_EQ(req.retries, 3);
    ASSERT_EQ(req.jobs.size(), 1u);
    const ServeJobSpec& job = req.jobs[0];
    EXPECT_EQ(job.workload, "KM");
    EXPECT_EQ(job.label, "KM"); // defaults to the workload
    EXPECT_DOUBLE_EQ(job.scale, 0.5);
    ASSERT_EQ(job.overrides.size(), 4u);
    // Number lexemes survive untouched: a 64-bit seed must not go
    // through a double.
    EXPECT_EQ(job.overrides[3].first, "seed");
    EXPECT_EQ(job.overrides[3].second, "18446744073709551615");
    EXPECT_EQ(job.overrides[2].second, "true");
}

TEST(Protocol, RejectsMalformedRequests)
{
    expectSimError(SimErrorKind::kSerialization, "",
                   [] { parseServeRequest("not json"); });
    expectSimError(SimErrorKind::kSerialization, "",
                   [] { parseServeRequest("{\"type\": \"dance\"}"); });
    expectSimError(SimErrorKind::kSerialization, "non-empty",
                   [] {
                       parseServeRequest(
                           "{\"type\": \"run\", \"jobs\": []}");
                   });
    // A job must carry exactly one kernel identity.
    expectSimError(SimErrorKind::kSerialization, "exactly one",
                   [] {
                       parseServeRequest(
                           "{\"type\": \"run\", \"jobs\": [{"
                           "\"workload\": \"KM\","
                           " \"kernelText\": \"k\"}]}");
                   });
    expectSimError(SimErrorKind::kSerialization, "exactly one",
                   [] {
                       parseServeRequest(
                           "{\"type\": \"run\", \"jobs\": [{}]}");
                   });
    expectSimError(SimErrorKind::kConfig, "timeoutSeconds",
                   [] {
                       parseServeRequest(
                           "{\"type\": \"run\","
                           " \"options\": {\"timeoutSeconds\": -1},"
                           " \"jobs\": [{\"workload\": \"KM\"}]}");
                   });
}

// --------------------------------------------------------------------
// Daemon behavior through the transport-free handler.
// --------------------------------------------------------------------

TEST(ServeDaemon, WarmBatchIsBitwiseIdenticalWithZeroSimulation)
{
    ServeOptions opts;
    opts.cacheDir = scratchDir("warm_batch");
    ServeDaemon daemon(opts);

    // Eight distinct semantic configurations.
    std::vector<ServeJobSpec> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back(kmJob(8192u << i));
    const std::string request = runRequest(jobs);

    const std::string cold = daemon.handleRequest(request);
    EXPECT_EQ(daemon.simulationsRun(), 8u);

    const std::string warm = daemon.handleRequest(request);
    // The headline guarantee: zero re-simulation on the warm batch...
    EXPECT_EQ(daemon.simulationsRun(), 8u);
    EXPECT_EQ(daemon.cache().stats().hits(), 8u);

    const JsonValue warm_doc = JsonValue::parse(warm);
    const JsonValue& runs = warm_doc.at("runs");
    ASSERT_EQ(runs.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(runs.at(i).at("cached").asBool()) << i;
        EXPECT_EQ(runs.at(i).at("result").at("status").asString(), "ok");
        // ...and every cached payload is byte-for-byte the one the
        // cold run produced.
        EXPECT_EQ(rawResultText(cold, i), rawResultText(warm, i)) << i;
        EXPECT_FALSE(rawResultText(cold, i).empty()) << i;
    }
}

TEST(ServeDaemon, DiskCacheSurvivesRestartAndFingerprintFlipInvalidates)
{
    const std::string dir = scratchDir("restart");
    const std::string request = runRequest({kmJob(32768), kmJob(65536)});

    ServeOptions opts;
    opts.cacheDir = dir;
    opts.fingerprint = "fp-one";
    {
        ServeDaemon daemon(opts);
        daemon.handleRequest(request);
        EXPECT_EQ(daemon.simulationsRun(), 2u);
    }
    {
        // Same fingerprint, fresh process: everything comes off disk.
        ServeDaemon daemon(opts);
        const std::string warm = daemon.handleRequest(request);
        EXPECT_EQ(daemon.simulationsRun(), 0u);
        EXPECT_EQ(daemon.cache().stats().diskHits, 2u);
        const JsonValue doc = JsonValue::parse(warm);
        for (std::size_t i = 0; i < 2; ++i)
            EXPECT_TRUE(doc.at("runs").at(i).at("cached").asBool());
    }
    {
        // Flipping the schema fingerprint orphans every entry: the
        // same requests miss and re-simulate.
        ServeOptions flipped = opts;
        flipped.fingerprint = "fp-two";
        ServeDaemon daemon(flipped);
        const std::string response = daemon.handleRequest(request);
        EXPECT_EQ(daemon.simulationsRun(), 2u);
        EXPECT_EQ(daemon.cache().stats().hits(), 0u);
        const JsonValue doc = JsonValue::parse(response);
        for (std::size_t i = 0; i < 2; ++i)
            EXPECT_FALSE(doc.at("runs").at(i).at("cached").asBool());
    }
}

TEST(ServeDaemon, ObservationOverridesHitTheSemanticEntry)
{
    ServeOptions opts;
    ServeDaemon daemon(opts);
    daemon.handleRequest(runRequest({kmJob(32768)}));
    ASSERT_EQ(daemon.simulationsRun(), 1u);

    // The same semantic config with metrics/audit observation toggled
    // must be answered from cache.
    ServeJobSpec observed = kmJob(32768);
    observed.overrides.emplace_back("sim.metrics", "true");
    observed.overrides.emplace_back("sim.audit", "true");
    const std::string response =
        daemon.handleRequest(runRequest({observed}));
    EXPECT_EQ(daemon.simulationsRun(), 1u);
    const JsonValue doc = JsonValue::parse(response);
    EXPECT_TRUE(doc.at("runs").at(0).at("cached").asBool());

    // Engine selection is observational too: a serial run warms the
    // cache for parallel requests of the same semantic config.
    ServeJobSpec sharded = kmJob(32768);
    sharded.overrides.emplace_back("sim.shards", "4");
    const std::string sharded_response =
        daemon.handleRequest(runRequest({sharded}));
    EXPECT_EQ(daemon.simulationsRun(), 1u);
    const JsonValue sharded_doc = JsonValue::parse(sharded_response);
    EXPECT_TRUE(sharded_doc.at("runs").at(0).at("cached").asBool());
}

TEST(ServeDaemon, FailuresBecomeRowsAndAreNeverCached)
{
    ServeOptions opts;
    ServeDaemon daemon(opts);

    // One good job, one invalid workload, one config that fails inside
    // simulate() — keep-going semantics must deliver all three rows.
    ServeJobSpec good = kmJob(32768);
    ServeJobSpec unknown;
    unknown.workload = "NOPE";
    unknown.label = "unknown";
    ServeJobSpec broken = kmJob(32768);
    broken.label = "broken";
    broken.overrides.emplace_back("scheduler", "gto");
    broken.overrides.emplace_back("prefetcher", "sap");

    const std::string request = runRequest({good, unknown, broken});
    const std::string first = daemon.handleRequest(request);
    const JsonValue doc = JsonValue::parse(first);
    const JsonValue& runs = doc.at("runs");
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs.at(0).at("result").at("status").asString(), "ok");
    EXPECT_EQ(runs.at(1).at("result").at("status").asString(), "error");
    EXPECT_EQ(runs.at(1).at("result").at("error").at("kind").asString(),
              "ConfigError");
    EXPECT_FALSE(runs.at(1).has("key")); // never keyed
    EXPECT_EQ(runs.at(2).at("result").at("status").asString(), "error");

    // Only the clean result was memoized: the repeat serves the good
    // job from cache and re-runs the broken one.
    const std::uint64_t after_first = daemon.simulationsRun();
    const std::string second = daemon.handleRequest(request);
    const JsonValue doc2 = JsonValue::parse(second);
    EXPECT_TRUE(doc2.at("runs").at(0).at("cached").asBool());
    EXPECT_FALSE(doc2.at("runs").at(2).at("cached").asBool());
    EXPECT_GT(daemon.simulationsRun(), after_first);
}

TEST(ServeDaemon, TimeoutWithRetriesThroughServicePath)
{
    ServeOptions opts;
    opts.threads = 2;
    ServeDaemon daemon(opts);

    // KM at 5x scale runs ~8 s; a 1.5 s deadline forces the timeout
    // path (twice, because of the retry) while the ~20 ms job in the
    // same batch still completes — the service always runs with
    // keep-going semantics. The margins are wide on both sides so
    // sanitizer-instrumented builds (~10x slower) stay on the same
    // side of the deadline.
    ServeJobSpec slow;
    slow.workload = "KM";
    slow.scale = 5.0;
    slow.label = "slow";
    ServeJobSpec quick = kmJob(32768, /*scale=*/0.01);
    const std::string response = daemon.handleRequest(
        runRequest({slow, quick}, /*timeout_seconds=*/1.5,
                   /*retries=*/1));

    const JsonValue doc = JsonValue::parse(response);
    const JsonValue& runs = doc.at("runs");
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs.at(0).at("result").at("status").asString(), "timeout");
    EXPECT_EQ(runs.at(0).at("result").at("error").at("kind").asString(),
              "Timeout");
    EXPECT_EQ(runs.at(1).at("result").at("status").asString(), "ok");

    // Timeouts are environmental; the repeat re-runs the slow job.
    const std::string again = daemon.handleRequest(
        runRequest({slow, quick}, 1.5, 0));
    const JsonValue doc2 = JsonValue::parse(again);
    EXPECT_FALSE(doc2.at("runs").at(0).at("cached").asBool());
    EXPECT_TRUE(doc2.at("runs").at(1).at("cached").asBool());
}

TEST(ServeDaemon, InlineKernelTextJobsAreCached)
{
    ServeOptions opts;
    ServeDaemon daemon(opts);
    ServeJobSpec job;
    job.label = "inline";
    job.kernelText =
        "kernel inline_k 64\n"
        "gen 0 strided base=4096 warp=2048 iter=98304 sm=0\n"
        "load r0 gen=0\n"
        "alu r1 r0\n";
    const std::string request = runRequest({job});
    daemon.handleRequest(request);
    EXPECT_EQ(daemon.simulationsRun(), 1u);
    const std::string warm = daemon.handleRequest(request);
    EXPECT_EQ(daemon.simulationsRun(), 1u);
    const JsonValue doc = JsonValue::parse(warm);
    EXPECT_TRUE(doc.at("runs").at(0).at("cached").asBool());
    EXPECT_EQ(doc.at("runs").at(0).at("result").at("status").asString(),
              "ok");
}

TEST(ServeDaemon, MalformedRequestBecomesErrorResponse)
{
    ServeOptions opts;
    ServeDaemon daemon(opts);
    const JsonValue doc =
        JsonValue::parse(daemon.handleRequest("{\"type\": \"run\"}"));
    EXPECT_EQ(doc.at("type").asString(), "error");
    EXPECT_EQ(doc.at("kind").asString(), "SerializationError");
}

// --------------------------------------------------------------------
// End to end over a real socket.
// --------------------------------------------------------------------

TEST(ServeSocket, RoundTripPingRunShutdown)
{
    const std::string dir = scratchDir("socket");
    ServeOptions opts;
    opts.socketPath = dir + "/apres.sock";
    opts.cacheDir = dir + "/cache";
    ServeDaemon daemon(opts);
    daemon.start();

    const JsonValue pong = JsonValue::parse(
        serveRoundTrip(opts.socketPath, "{\"type\": \"ping\"}"));
    EXPECT_EQ(pong.at("type").asString(), "pong");

    // Cold batch over the wire, then warm: the warm hit must be at
    // least 100x faster than simulating (KM at full scale runs for
    // seconds; a cache hit is a map lookup plus one round trip).
    ServeJobSpec job;
    job.workload = "KM";
    job.label = "km-full";
    const std::string request = runRequest({job});

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const std::string cold = serveRoundTrip(opts.socketPath, request);
    const auto t1 = clock::now();
    const std::string warm = serveRoundTrip(opts.socketPath, request);
    const auto t2 = clock::now();

    const JsonValue cold_doc = JsonValue::parse(cold);
    const JsonValue warm_doc = JsonValue::parse(warm);
    EXPECT_FALSE(cold_doc.at("runs").at(0).at("cached").asBool());
    EXPECT_TRUE(warm_doc.at("runs").at(0).at("cached").asBool());
    EXPECT_EQ(rawResultText(cold, 0), rawResultText(warm, 0));

    const double cold_s =
        std::chrono::duration<double>(t1 - t0).count();
    const double warm_s =
        std::chrono::duration<double>(t2 - t1).count();
    // Only meaningful when the simulation was actually slow (CI
    // machines vary); KM at scale 1 comfortably is.
    ASSERT_GT(cold_s, 0.2) << "KM ran suspiciously fast; "
                              "speedup assertion would be vacuous";
    EXPECT_GE(cold_s / warm_s, 100.0)
        << "cold " << cold_s << " s vs warm " << warm_s << " s";

    const JsonValue stats = JsonValue::parse(
        serveRoundTrip(opts.socketPath, "{\"type\": \"stats\"}"));
    EXPECT_EQ(stats.at("type").asString(), "stats");
    EXPECT_EQ(stats.at("simulations").asUint64(), 1u);

    const JsonValue bye = JsonValue::parse(
        serveRoundTrip(opts.socketPath, "{\"type\": \"shutdown\"}"));
    EXPECT_EQ(bye.at("type").asString(), "bye");
    daemon.wait();
    EXPECT_FALSE(daemon.running());
    daemon.stop();
    EXPECT_FALSE(fs::exists(opts.socketPath));
}

} // namespace
} // namespace apres
