/**
 * @file
 * Tests for the benchmark suite and the oracle characterizer: every
 * Table IV application builds, and the Table I signatures (dominant
 * strides, locality classes) come out of the oracle replay.
 */

#include <gtest/gtest.h>

#include "workloads/characterize.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

TEST(Workloads, AllFifteenBuild)
{
    const auto& names = allWorkloadNames();
    ASSERT_EQ(names.size(), 15u);
    for (const std::string& name : names) {
        const Workload wl = makeWorkload(name, 0.1);
        EXPECT_EQ(wl.abbr, name);
        EXPECT_FALSE(wl.kernel.code().empty());
        EXPECT_GE(wl.kernel.numLoads(), 1);
        EXPECT_GE(wl.kernel.tripCount(), 8u);
    }
}

TEST(Workloads, TableIvOrderAndCategories)
{
    const auto& names = allWorkloadNames();
    EXPECT_EQ(names.front(), "BFS");
    EXPECT_EQ(names[4], "KM");
    EXPECT_EQ(names.back(), "SP");

    EXPECT_EQ(workloadNames(AppCategory::kCacheSensitive).size(), 5u);
    EXPECT_EQ(workloadNames(AppCategory::kCacheInsensitive).size(), 5u);
    EXPECT_EQ(workloadNames(AppCategory::kComputeIntensive).size(), 5u);
}

TEST(Workloads, MemoryIntensiveClassification)
{
    EXPECT_TRUE(isMemoryIntensive("BFS"));
    EXPECT_TRUE(isMemoryIntensive("HISTO"));
    EXPECT_FALSE(isMemoryIntensive("SP"));
    EXPECT_FALSE(isMemoryIntensive("PF"));
}

TEST(Workloads, ScaleControlsTripCount)
{
    const Workload small = makeWorkload("KM", 0.1);
    const Workload big = makeWorkload("KM", 1.0);
    EXPECT_LT(small.kernel.tripCount(), big.kernel.tripCount());
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("NOPE"), testing::ExitedWithCode(1), "");
}

TEST(Characterize, KmSignature)
{
    // Table I: KM's single load has stride 4352 and strong reuse.
    const Workload wl = makeWorkload("KM", 1.0);
    CharacterizeOptions opt;
    opt.maxIters = 96;
    const auto profiles = characterizeKernel(wl.kernel, opt);
    ASSERT_EQ(profiles.size(), 1u);
    EXPECT_EQ(profiles[0].dominantStride, 4352);
    EXPECT_GT(profiles[0].dominantStrideShare, 0.9);
    // #L/#R far below 1: lines reused many times.
    EXPECT_LT(profiles[0].uniqueLinesPerRef, 0.3);
}

TEST(Characterize, NwSignature)
{
    // Table I: NW strides are -1966080 with #L/#R ~ 1 (no reuse).
    const Workload wl = makeWorkload("NW", 1.0);
    const auto profiles = characterizeKernel(wl.kernel);
    ASSERT_GE(profiles.size(), 2u);
    for (const auto& p : profiles) {
        EXPECT_EQ(p.dominantStride, -1966080);
        EXPECT_GT(p.dominantStrideShare, 0.9);
        EXPECT_GT(p.uniqueLinesPerRef, 0.9);
    }
}

TEST(Characterize, SradStrideSignature)
{
    const Workload wl = makeWorkload("SRAD", 1.0);
    const auto profiles = characterizeKernel(wl.kernel);
    ASSERT_GE(profiles.size(), 3u);
    // The three diffusion loads stride by 16384 between warps.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(profiles[static_cast<std::size_t>(i)].dominantStride,
                  16384);
    }
}

TEST(Characterize, BfsHasNoDominantStride)
{
    // Table I: BFS strides are 0-dominated with a small share —
    // irregular accesses have no usable stride.
    const Workload wl = makeWorkload("BFS", 1.0);
    const auto profiles = characterizeKernel(wl.kernel);
    for (const auto& p : profiles)
        EXPECT_LT(p.dominantStrideShare, 0.5);
}

TEST(Characterize, BfsHasHighLocality)
{
    const Workload wl = makeWorkload("BFS", 1.0);
    const auto profiles = characterizeKernel(wl.kernel);
    // Strong inter-warp sharing: far fewer unique lines than refs.
    for (const auto& p : profiles)
        EXPECT_LT(p.uniqueLinesPerRef, 0.5);
}

TEST(Characterize, HistoPureStream)
{
    const Workload wl = makeWorkload("HISTO", 1.0);
    const auto profiles = characterizeKernel(wl.kernel);
    ASSERT_EQ(profiles.size(), 1u);
    EXPECT_EQ(profiles[0].dominantStride, 512);
    EXPECT_GT(profiles[0].dominantStrideShare, 0.9);
}

TEST(Characterize, BpMixesStreamsAndLocality)
{
    const Workload wl = makeWorkload("BP", 1.0);
    const auto profiles = characterizeKernel(wl.kernel);
    ASSERT_EQ(profiles.size(), 3u);
    // Two 128 B streams...
    EXPECT_EQ(profiles[0].dominantStride, 128);
    EXPECT_EQ(profiles[1].dominantStride, 128);
    // ...and one high-locality table (24 KB window).
    EXPECT_LT(profiles[2].uniqueLinesPerRef, 0.2);
}

TEST(Characterize, LoadSharesSumToOne)
{
    const Workload wl = makeWorkload("SPMV", 1.0);
    const auto profiles = characterizeKernel(wl.kernel);
    double total = 0.0;
    for (const auto& p : profiles)
        total += p.loadShare;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Characterize, PcsMatchTableI)
{
    const Workload wl = makeWorkload("BFS", 1.0);
    const auto profiles = characterizeKernel(wl.kernel);
    ASSERT_EQ(profiles.size(), 3u);
    EXPECT_EQ(profiles[0].pc, 0x110u);
    EXPECT_EQ(profiles[1].pc, 0xF0u);
    EXPECT_EQ(profiles[2].pc, 0x198u);
}

} // namespace
} // namespace apres
