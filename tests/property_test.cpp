/**
 * @file
 * Property-style parameterized sweeps (TEST_P): invariants that must
 * hold across cache geometries, scheduler policies, prefetchers and
 * workloads.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "mem/cache.hpp"
#include "sim/gpu.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

// --------------------------------------------------------------------
// Cache geometry sweep: stats invariants hold for every configuration.
// --------------------------------------------------------------------

class CacheGeometry
    : public testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t,
                                               bool>>
{
};

TEST_P(CacheGeometry, InvariantsUnderRandomishWorkload)
{
    const auto [size, ways, hashed] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.ways = ways;
    cfg.numMshrs = 8;
    cfg.hashSetIndex = hashed;
    Cache cache("p", cfg);

    // Deterministic pseudo-random access stream with some reuse.
    std::uint64_t state = 12345;
    for (int i = 0; i < 5000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const Addr line = ((state >> 20) % 512) * 128;
        MemRequest req;
        req.lineAddr = line;
        req.warp = static_cast<WarpId>(state % 48);
        const AccessOutcome outcome = cache.access(req);
        if (outcome == AccessOutcome::kMiss)
            cache.fill(line);
        else if (outcome == AccessOutcome::kMshrFull)
            cache.fill(line); // drain to make progress
    }

    const CacheStats& s = cache.stats();
    EXPECT_EQ(s.demandHits + s.demandMisses, s.demandAccesses);
    EXPECT_EQ(s.hitAfterHit + s.hitAfterMiss, s.demandHits);
    EXPECT_EQ(s.coldMisses + s.capacityConflictMisses, s.demandMisses);
    EXPECT_LE(s.coldMisses, 512u); // at most one cold miss per line
    EXPECT_GE(s.fills, s.evictions); // every eviction had a fill
    EXPECT_LE(cache.mshrsInUse(), cfg.numMshrs);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    testing::Combine(testing::Values(2048, 8192, 32 * 1024),
                     testing::Values(1u, 4u, 8u), testing::Bool()));

// --------------------------------------------------------------------
// Scheduler sweep: every policy preserves executed work and basic
// stat coherence on every workload category.
// --------------------------------------------------------------------

class SchedulerSweep
    : public testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(SchedulerSweep, WorkPreservedAndStatsCoherent)
{
    const auto [sched, app] = GetParam();
    const Workload wl = makeWorkload(app, 0.05);

    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 16;
    cfg.sm.warpsPerBlock = 16;
    cfg.sm.jobsPerWarp = 2;
    cfg.maxCycles = 3'000'000;
    cfg.scheduler = sched;

    const RunResult r = simulate(cfg, wl.kernel);
    ASSERT_TRUE(r.completed) << sched << " on " << app;

    // Work conservation: the dynamic instruction count is a pure
    // function of the kernel, warps, and jobs.
    const std::uint64_t expected = 2ull * 16 * 2 *
        wl.kernel.dynamicInstructionsPerWarp();
    EXPECT_EQ(r.instructions, expected);

    EXPECT_EQ(r.l1.demandHits + r.l1.demandMisses, r.l1.demandAccesses);
    EXPECT_EQ(r.l1.coldMisses + r.l1.capacityConflictMisses,
              r.l1.demandMisses);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 2.0 + 1e-9); // one issue slot per SM
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesTimesApps, SchedulerSweep,
    testing::Combine(testing::Values(std::string("lrr"),
                                     std::string("gto"),
                                     std::string("ccws"),
                                     std::string("mascar"),
                                     std::string("pa"),
                                     std::string("laws")),
                     testing::Values(std::string("BFS"), std::string("KM"),
                                     std::string("SRAD"),
                                     std::string("SP"))),
    [](const auto& info) {
        return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// --------------------------------------------------------------------
// Prefetcher sweep: prefetching affects timing and cache contents but
// never correctness-critical counters.
// --------------------------------------------------------------------

class PrefetcherSweep
    : public testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(PrefetcherSweep, AccountingConsistent)
{
    const auto [pf, app] = GetParam();
    const Workload wl = makeWorkload(app, 0.05);

    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 16;
    cfg.sm.warpsPerBlock = 16;
    cfg.sm.jobsPerWarp = 2;
    cfg.maxCycles = 3'000'000;
    cfg.scheduler = pf == "sap" ? "laws" : "lrr";
    cfg.prefetcher = pf;

    const RunResult r = simulate(cfg, wl.kernel);
    ASSERT_TRUE(r.completed);

    // Issued prefetches are bounded by requests, fills by issues.
    EXPECT_LE(r.prefetchesIssued, r.prefetchesRequested);
    EXPECT_LE(r.l1.prefetchFills, r.l1.prefetchesAccepted);
    EXPECT_LE(r.l1.usefulPrefetches,
              r.l1.prefetchFills + r.l1.demandMergedIntoPrefetch);
    EXPECT_LE(r.l1.earlyEvictionRatio(), 1.0);
    // Demand work does not change.
    const std::uint64_t expected = 2ull * 16 * 2 *
        wl.kernel.dynamicInstructionsPerWarp();
    EXPECT_EQ(r.instructions, expected);
}

INSTANTIATE_TEST_SUITE_P(
    PrefetchersTimesApps, PrefetcherSweep,
    testing::Combine(testing::Values(std::string("none"),
                                     std::string("str"),
                                     std::string("sld"),
                                     std::string("sap")),
                     testing::Values(std::string("NW"), std::string("KM"),
                                     std::string("HISTO"))),
    [](const auto& info) {
        return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// --------------------------------------------------------------------
// Workload sweep: every app terminates deterministically on the tiny
// configuration.
// --------------------------------------------------------------------

class WorkloadSweep : public testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSweep, DeterministicTermination)
{
    const Workload wl = makeWorkload(GetParam(), 0.05);
    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    cfg.maxCycles = 3'000'000;
    const RunResult a = simulate(cfg, wl.kernel);
    const RunResult b = simulate(cfg, wl.kernel);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1.demandMisses, b.l1.demandMisses);
}

INSTANTIATE_TEST_SUITE_P(AllApps, WorkloadSweep,
                         testing::ValuesIn(allWorkloadNames()),
                         [](const auto& info) { return info.param; });

// --------------------------------------------------------------------
// APRES determinism: the full LAWS+SAP feedback loop is reproducible
// on every workload.
// --------------------------------------------------------------------

class ApresDeterminism : public testing::TestWithParam<std::string>
{
};

TEST_P(ApresDeterminism, BitIdenticalRuns)
{
    const Workload wl = makeWorkload(GetParam(), 0.05);
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 16;
    cfg.sm.warpsPerBlock = 16;
    cfg.sm.jobsPerWarp = 2;
    cfg.useApres();
    cfg.maxCycles = 3'000'000;
    const RunResult a = simulate(cfg, wl.kernel);
    const RunResult b = simulate(cfg, wl.kernel);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.policy.get("laws.groupsFormed"),
              b.policy.get("laws.groupsFormed"));
    EXPECT_EQ(a.policy.get("sap.strideMatches"),
              b.policy.get("sap.strideMatches"));
    EXPECT_EQ(a.l1.earlyEvictions, b.l1.earlyEvictions);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ApresDeterminism,
                         testing::ValuesIn(allWorkloadNames()),
                         [](const auto& info) { return info.param; });

// --------------------------------------------------------------------
// Capacity monotonicity: growing the L1 never increases the miss rate
// (LRU caches of increasing capacity with identical access streams
// would satisfy inclusion; the pipeline reorders slightly, so allow a
// small tolerance).
// --------------------------------------------------------------------

class CapacityMonotonicity : public testing::TestWithParam<std::string>
{
};

TEST_P(CapacityMonotonicity, BiggerL1NeverMuchWorse)
{
    const Workload wl = makeWorkload(GetParam(), 0.05);
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 16;
    cfg.sm.warpsPerBlock = 16;
    cfg.sm.jobsPerWarp = 1;
    cfg.maxCycles = 3'000'000;

    double previous = 1.1;
    for (const std::uint64_t size :
         {16u * 1024, 64u * 1024, 256u * 1024}) {
        cfg.sm.l1.sizeBytes = size;
        const RunResult r = simulate(cfg, wl.kernel);
        ASSERT_TRUE(r.completed);
        EXPECT_LE(r.l1.missRate(), previous + 0.02) << size;
        previous = r.l1.missRate();
    }
}

INSTANTIATE_TEST_SUITE_P(CacheSensitiveApps, CapacityMonotonicity,
                         testing::Values(std::string("BFS"),
                                         std::string("MUM"),
                                         std::string("SPMV"),
                                         std::string("KM")),
                         [](const auto& info) { return info.param; });

} // namespace
} // namespace apres
