/**
 * @file
 * Tests for the string-keyed config registry and the policy registry:
 * strict parsing, unknown-key handling, override precedence
 * (defaults < config file < --set), config echoing in results, the
 * RunResult -> StatSet round trip, and runtime policy registration.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sched/lrr.hpp"
#include "sim/config_registry.hpp"
#include "sim/gpu.hpp"
#include "sim/policy_registry.hpp"
#include "sim_error_matchers.hpp"
#include "workloads/workload.hpp"

namespace apres {
namespace {

GpuConfig
tinyConfig()
{
    GpuConfig cfg;
    cfg.numSms = 2;
    cfg.sm.warpsPerSm = 8;
    cfg.sm.warpsPerBlock = 8;
    cfg.sm.jobsPerWarp = 1;
    cfg.maxCycles = 3'000'000;
    return cfg;
}

const Kernel&
tinyKernel()
{
    static const Workload wl = makeWorkload("KM", 0.05);
    return wl.kernel;
}

/** Write @p text to a fresh file under the test temp dir. */
std::string
writeTempConfig(const std::string& name, const std::string& text)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path);
    out << text;
    out.close();
    return path;
}

// --------------------------------------------------------------------
// Key space and basic get/set.
// --------------------------------------------------------------------

TEST(ConfigRegistry, CoversEveryMajorSubsystem)
{
    GpuConfig cfg;
    ConfigRegistry reg(cfg);
    for (const char* key :
         {"numSms", "maxCycles", "seed", "scheduler", "prefetcher",
          "sm.warpsPerSm", "l1.sizeBytes", "l1.replacement",
          "lsu.queueCapacity", "l2.sizeBytes", "dram.serviceInterval",
          "ccws.scoreBonus", "laws.groupCap", "sap.ptEntries",
          "str.degree", "energy.dramAccess"})
        EXPECT_TRUE(reg.has(key)) << key;
    EXPECT_FALSE(reg.has("l1.size")); // near-miss must not resolve
    EXPECT_GE(reg.keys().size(), 60u);
}

TEST(ConfigRegistry, SetUpdatesTheBoundField)
{
    GpuConfig cfg;
    ConfigRegistry reg(cfg);
    reg.set("l1.sizeBytes", "65536");
    EXPECT_EQ(cfg.sm.l1.sizeBytes, 65536u);
    EXPECT_EQ(reg.get("l1.sizeBytes"), "65536");

    reg.set("scheduler", "ccws");
    EXPECT_EQ(cfg.scheduler, "ccws");

    reg.set("laws.promoteOnHit", "off");
    EXPECT_FALSE(cfg.laws.promoteOnHit);

    reg.set("l1.replacement", "fifo");
    EXPECT_EQ(cfg.sm.l1.replacement, ReplacementPolicy::kFifo);

    reg.set("sm.prefetchMshrGate", "0.5");
    EXPECT_DOUBLE_EQ(cfg.sm.prefetchMshrGate, 0.5);
}

TEST(ConfigRegistry, UnknownKeyReportsAndLeavesConfigUntouched)
{
    GpuConfig cfg;
    const GpuConfig before = cfg;
    ConfigRegistry reg(cfg);
    std::string error;
    EXPECT_FALSE(reg.trySet("l1.sizebytes", "1024", &error));
    EXPECT_NE(error.find("unknown config key"), std::string::npos);
    EXPECT_NE(error.find("l1.sizebytes"), std::string::npos);
    EXPECT_EQ(cfg.sm.l1.sizeBytes, before.sm.l1.sizeBytes);

    expectSimError(SimErrorKind::kConfig, "unknown config key",
                   [&] { reg.set("no.such.key", "1"); });
}

TEST(ConfigRegistry, TypeMismatchesAreRejected)
{
    GpuConfig cfg;
    ConfigRegistry reg(cfg);
    std::string error;

    // Garbage where an integer is expected.
    EXPECT_FALSE(reg.trySet("numSms", "fifteen", &error));
    EXPECT_NE(error.find("numSms"), std::string::npos);
    EXPECT_FALSE(reg.trySet("l1.sizeBytes", "32KB", &error));
    EXPECT_FALSE(reg.trySet("l1.sizeBytes", "-1", &error));

    // Range violations.
    EXPECT_FALSE(reg.trySet("numSms", "0", &error));
    EXPECT_NE(error.find("minimum"), std::string::npos);
    EXPECT_FALSE(reg.trySet("sm.prefetchMshrGate", "1.5", &error));
    EXPECT_FALSE(reg.trySet("sm.prefetchMshrGate", "nan", &error));

    // Bad enumerations.
    EXPECT_FALSE(reg.trySet("l1.replacement", "plru", &error));
    EXPECT_FALSE(reg.trySet("laws.promoteOnHit", "maybe", &error));
    EXPECT_FALSE(reg.trySet("scheduler", "fancy", &error));
    EXPECT_NE(error.find("known:"), std::string::npos);

    // Nothing above may have modified the config.
    const GpuConfig fresh;
    EXPECT_EQ(cfg.numSms, fresh.numSms);
    EXPECT_EQ(cfg.sm.l1.sizeBytes, fresh.sm.l1.sizeBytes);
    EXPECT_EQ(cfg.scheduler, fresh.scheduler);
}

TEST(ConfigRegistry, AssignmentSyntaxToleratesSpaces)
{
    GpuConfig cfg;
    ConfigRegistry reg(cfg);
    reg.applyAssignment("l1.ways = 4");
    EXPECT_EQ(cfg.sm.l1.ways, 4u);
    reg.applyAssignment("l1.ways=8");
    EXPECT_EQ(cfg.sm.l1.ways, 8u);
    expectSimError(SimErrorKind::kConfig, "key=value",
                   [&] { reg.applyAssignment("l1.ways"); });
    expectSimError(SimErrorKind::kConfig, "empty key",
                   [&] { reg.applyAssignment("=8"); });
}

// --------------------------------------------------------------------
// Config files and precedence.
// --------------------------------------------------------------------

TEST(ConfigRegistry, LoadsGpgpuSimStyleFiles)
{
    const std::string path = writeTempConfig("load.cfg",
                                             "# APRES Table III subset\n"
                                             "\n"
                                             "numSms = 4\n"
                                             "l1.sizeBytes = 16384  # 16 KB\n"
                                             "scheduler = gto\n");
    GpuConfig cfg;
    ConfigRegistry reg(cfg);
    reg.loadFile(path);
    EXPECT_EQ(cfg.numSms, 4);
    EXPECT_EQ(cfg.sm.l1.sizeBytes, 16384u);
    EXPECT_EQ(cfg.scheduler, "gto");
}

TEST(ConfigRegistry, BadFileLinesAreFatalWithLineNumber)
{
    const std::string missing = testing::TempDir() + "does_not_exist.cfg";
    GpuConfig cfg;
    ConfigRegistry reg(cfg);
    expectSimError(SimErrorKind::kConfig, "cannot open config file",
                   [&] { reg.loadFile(missing); });

    const std::string bad =
        writeTempConfig("bad.cfg", "numSms = 2\nnot an assignment\n");
    expectSimError(SimErrorKind::kConfig, ":2:",
                   [&] { reg.loadFile(bad); });

    const std::string unknown =
        writeTempConfig("unknown.cfg", "l1.bogus = 7\n");
    expectSimError(SimErrorKind::kConfig, "unknown config key",
                   [&] { reg.loadFile(unknown); });
}

TEST(ConfigRegistry, CliSetOverridesConfigFile)
{
    // Mirror the apres_sim application order: defaults, then --config
    // files in order, then --set assignments in order.
    const std::string first =
        writeTempConfig("first.cfg", "l1.sizeBytes = 16384\nnumSms = 4\n");
    const std::string second =
        writeTempConfig("second.cfg", "l1.sizeBytes = 32768\n");
    GpuConfig cfg;
    ConfigRegistry reg(cfg);
    reg.loadFile(first);
    reg.loadFile(second);
    reg.applyAssignment("l1.sizeBytes=65536");
    EXPECT_EQ(cfg.sm.l1.sizeBytes, 65536u); // --set beats both files
    EXPECT_EQ(cfg.numSms, 4);               // untouched keys persist
}

// --------------------------------------------------------------------
// Snapshot / echo / round trips through simulation.
// --------------------------------------------------------------------

TEST(ConfigRegistry, SnapshotRoundTripsThroughASecondRegistry)
{
    GpuConfig cfg = tinyConfig();
    cfg.useApres();
    cfg.sm.l1.sizeBytes = 12345;
    ConfigRegistry reg(cfg);

    GpuConfig rebuilt;
    ConfigRegistry target(rebuilt);
    for (const auto& [key, value] : reg.snapshot())
        target.set(key, value);
    EXPECT_EQ(rebuilt.numSms, cfg.numSms);
    EXPECT_EQ(rebuilt.scheduler, "laws");
    EXPECT_EQ(rebuilt.prefetcher, "sap");
    EXPECT_EQ(rebuilt.sm.l1.sizeBytes, 12345u);
    EXPECT_EQ(ConfigRegistry(rebuilt).snapshot(), reg.snapshot());
}

TEST(ConfigRegistry, ResultEchoesTheOverriddenConfig)
{
    GpuConfig cfg = tinyConfig();
    applyOverrides(cfg, {{"l1.sizeBytes", "65536"}});
    const RunResult r = simulate(cfg, tinyKernel());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.config.at("l1.sizeBytes"), "65536");
    EXPECT_EQ(r.config.at("scheduler"), "lrr");
    EXPECT_EQ(r.config.at("numSms"), "2");
}

TEST(ConfigRegistry, OverrideRunMatchesHardcodedRunBitwise)
{
    // A sweep driven through --config/--set must be indistinguishable
    // from one that edits GpuConfig fields directly.
    GpuConfig direct = tinyConfig();
    direct.useApres();
    direct.sm.l1.sizeBytes = 16 * 1024;
    direct.sm.l1.ways = 4;

    GpuConfig overridden = tinyConfig();
    applyOverrides(overridden, {{"scheduler", "laws"},
                                {"prefetcher", "sap"},
                                {"l1.sizeBytes", "16384"},
                                {"l1.ways", "4"}});

    const RunResult a = simulate(direct, tinyKernel());
    const RunResult b = simulate(overridden, tinyKernel());
    ASSERT_TRUE(a.completed);
    const StatSet sa = a.toStatSet();
    const StatSet sb = b.toStatSet();
    ASSERT_EQ(sa.entries().size(), sb.entries().size());
    for (const auto& [key, value] : sa.entries())
        EXPECT_EQ(value, sb.get(key)) << key;
    EXPECT_EQ(a.config, b.config);
}

TEST(RunResult, EveryCounterAppearsUnderAStableStatKey)
{
    GpuConfig cfg = tinyConfig();
    cfg.useApres();
    const RunResult r = simulate(cfg, tinyKernel());
    ASSERT_TRUE(r.completed);
    const StatSet s = r.toStatSet();

    // Top-level counters map to documented dotted keys with the same
    // values — downstream tooling keys on these names.
    EXPECT_EQ(s.get("sim.cycles"), static_cast<double>(r.cycles));
    EXPECT_EQ(s.get("sim.instructions"),
              static_cast<double>(r.instructions));
    EXPECT_EQ(s.get("sim.ipc"), r.ipc);
    EXPECT_EQ(s.get("l1.accesses"),
              static_cast<double>(r.l1.demandAccesses));
    EXPECT_EQ(s.get("l1.misses"), static_cast<double>(r.l1.demandMisses));
    EXPECT_EQ(s.get("l1.earlyEvictions"),
              static_cast<double>(r.l1.earlyEvictions));
    EXPECT_EQ(s.get("l2.accesses"),
              static_cast<double>(r.l2.demandAccesses));
    EXPECT_EQ(s.get("dram.requests"),
              static_cast<double>(r.dramRequests));
    EXPECT_EQ(s.get("prefetch.issued"),
              static_cast<double>(r.prefetchesIssued));
    EXPECT_EQ(s.get("sm.idleCycles"), static_cast<double>(r.idleCycles));
    EXPECT_EQ(s.get("energy.total"), r.energy.total());

    // Policy stats and per-SM breakdowns are folded in.
    for (const auto& [key, value] : r.policy.entries())
        EXPECT_EQ(s.get(key), value) << key;
    for (int i = 0; i < cfg.numSms; ++i) {
        const std::string prefix = "sm" + std::to_string(i) + ".";
        EXPECT_TRUE(s.has(prefix + "instructions")) << prefix;
        EXPECT_TRUE(s.has(prefix + "l1.missRate")) << prefix;
    }
    // Per-SM instruction counts sum to the GPU-wide total.
    double per_sm_total = 0.0;
    for (int i = 0; i < cfg.numSms; ++i)
        per_sm_total += s.get("sm" + std::to_string(i) + ".instructions");
    EXPECT_EQ(per_sm_total, static_cast<double>(r.instructions));
}

// --------------------------------------------------------------------
// Policy registry: runtime registration extends the namespace.
// --------------------------------------------------------------------

TEST(PolicyRegistry, BuiltinsAreRegistered)
{
    for (const char* name :
         {"lrr", "gto", "ccws", "mascar", "pa", "laws"})
        EXPECT_TRUE(knownScheduler(name)) << name;
    for (const char* name : {"none", "str", "sld", "sap"})
        EXPECT_TRUE(knownPrefetcher(name)) << name;
    EXPECT_FALSE(knownScheduler("sap"));
    EXPECT_FALSE(knownPrefetcher("lrr"));
}

TEST(PolicyRegistry, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(registerScheduler(
                    "lrr",
                    [](const GpuConfig&) -> std::unique_ptr<Scheduler> {
                        return std::make_unique<LrrScheduler>();
                    }),
                testing::ExitedWithCode(1), "already registered");
}

TEST(PolicyRegistry, RuntimeRegistrationNeedsNoCoreEdits)
{
    // A downstream scheduler: registered once, then reachable through
    // the same config path as the builtins — by name, including via
    // the string-keyed config registry.
    if (!knownScheduler("lrr-clone"))
        registerScheduler(
            "lrr-clone",
            [](const GpuConfig&) -> std::unique_ptr<Scheduler> {
                return std::make_unique<LrrScheduler>();
            });
    EXPECT_TRUE(knownScheduler("lrr-clone"));

    GpuConfig cfg = tinyConfig();
    applyOverrides(cfg, {{"scheduler", "lrr-clone"}});
    const RunResult clone = simulate(cfg, tinyKernel());
    ASSERT_TRUE(clone.completed);
    EXPECT_EQ(clone.config.at("scheduler"), "lrr-clone");

    // Identical policy behind a different name: identical timing.
    GpuConfig base = tinyConfig();
    const RunResult lrr = simulate(base, tinyKernel());
    EXPECT_EQ(clone.cycles, lrr.cycles);
    EXPECT_EQ(clone.l1.demandMisses, lrr.l1.demandMisses);
}

} // namespace
} // namespace apres
