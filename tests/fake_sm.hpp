/**
 * @file
 * A hand-driven SmContext for scheduler/prefetcher unit tests.
 *
 * Tests set warp states directly and feed scheduler notifications by
 * hand, so policies can be verified without running the pipeline.
 */

#ifndef APRES_TESTS_FAKE_SM_HPP
#define APRES_TESTS_FAKE_SM_HPP

#include <memory>
#include <vector>

#include "core/sm.hpp"
#include "isa/kernel.hpp"

namespace apres {

/** Minimal controllable SmContext. */
class FakeSm : public SmContext
{
  public:
    explicit FakeSm(int num_warps, CacheConfig l1_config = [] {
        CacheConfig cfg;
        cfg.sizeBytes = 2048;
        cfg.ways = 8;
        cfg.numMshrs = 8;
        cfg.hashSetIndex = false;
        return cfg;
    }())
        : l1_("fake.l1", l1_config)
    {
        KernelBuilder b("fake");
        const int r = b.load(std::make_unique<UniformGen>(0x100));
        b.alu({r}, 1);
        kernel_ = b.build(4);

        warps.resize(static_cast<std::size_t>(num_warps));
        for (int w = 0; w < num_warps; ++w) {
            warps[static_cast<std::size_t>(w)].id = w;
            warps[static_cast<std::size_t>(w)].ageStamp =
                static_cast<std::uint64_t>(w) + 1;
        }
    }

    SmId id() const override { return 0; }
    int numWarps() const override { return static_cast<int>(warps.size()); }
    const WarpRuntime& warpState(WarpId warp) const override
    {
        return warps.at(static_cast<std::size_t>(warp));
    }
    const Kernel& kernel() const override { return kernel_; }
    const Cache& l1() const override { return l1_; }
    std::size_t lsuQueueDepth() const override { return lsuDepth; }
    bool nextIsMemory(WarpId warp) const override
    {
        return memoryNext.size() > static_cast<std::size_t>(warp) &&
            memoryNext[static_cast<std::size_t>(warp)];
    }
    Cache& l1Mutable() override { return l1_; }

    /** Mutable warp state for test setup. */
    WarpRuntime& warp(WarpId w) { return warps.at(static_cast<std::size_t>(w)); }

    /** Mark whether warp @p w's next instruction is memory. */
    void
    setNextIsMemory(WarpId w, bool is_memory)
    {
        if (memoryNext.size() <= static_cast<std::size_t>(w))
            memoryNext.resize(static_cast<std::size_t>(w) + 1, false);
        memoryNext[static_cast<std::size_t>(w)] = is_memory;
    }

    std::size_t lsuDepth = 0;

  private:
    std::vector<WarpRuntime> warps;
    std::vector<bool> memoryNext;
    Kernel kernel_;
    Cache l1_;
};

/** Prefetch issuer that records requests and accepts them all. */
class RecordingIssuer : public PrefetchIssuer
{
  public:
    struct Request
    {
        Addr addr;
        Pc pc;
        WarpId warp;
    };

    bool
    issuePrefetch(Addr addr, Pc pc, WarpId target_warp) override
    {
        requests.push_back({addr, pc, target_warp});
        return accept;
    }

    std::vector<Request> requests;
    bool accept = true;
};

} // namespace apres

#endif // APRES_TESTS_FAKE_SM_HPP
