/**
 * @file
 * Tests for the bucketed calendar queue that replaced the memory
 * system's completion-event priority_queue.
 *
 * The contract under test: popUntil delivers events in exactly the
 * (ready cycle, push sequence) order of the heap it replaced — the
 * bitwise-identity of the engines depends on that tie-break — across
 * the window wrapping, far-future events migrating into the ring,
 * duplicate ready cycles, and pushes from inside the drain callback.
 */

#include "mem/event_queue.hpp"

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace apres {
namespace {

/** Drain everything up to @p now as (ready, value) pairs. */
std::vector<std::pair<Cycle, int>>
drain(CalendarQueue<int>& q, Cycle now)
{
    std::vector<std::pair<Cycle, int>> out;
    q.popUntil(now, [&](Cycle ready, int& v) {
        out.emplace_back(ready, v);
    });
    return out;
}

TEST(CalendarQueue, EmptyQueue)
{
    CalendarQueue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextReady(), kNoEventReady);
    EXPECT_TRUE(drain(q, 1000000).empty());
}

TEST(CalendarQueue, OrdersByReadyThenSeq)
{
    CalendarQueue<int> q;
    q.push(50, 1);
    q.push(10, 2);
    q.push(50, 3); // same cycle as the first: seq breaks the tie
    q.push(30, 4);
    EXPECT_EQ(q.nextReady(), 10u);
    EXPECT_EQ(q.size(), 4u);

    const auto got = drain(q, 100);
    const std::vector<std::pair<Cycle, int>> want{
        {10, 2}, {30, 4}, {50, 1}, {50, 3}};
    EXPECT_EQ(got, want);
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PartialDrainRespectsNow)
{
    CalendarQueue<int> q;
    q.push(10, 1);
    q.push(20, 2);
    q.push(30, 3);
    EXPECT_EQ(drain(q, 20).size(), 2u);
    EXPECT_EQ(q.nextReady(), 30u);
    EXPECT_EQ(drain(q, 29).size(), 0u);
    EXPECT_EQ(drain(q, 30).size(), 1u);
}

TEST(CalendarQueue, OrderingAcrossWindowWrap)
{
    // Ready cycles spanning several multiples of the window land in
    // the same buckets modulo the ring size; the queue must still
    // deliver them strictly by cycle as the drain point advances.
    CalendarQueue<int> q(64); // rounds up to the minimum ring
    const std::size_t window = q.window();
    std::vector<std::pair<Cycle, int>> want;
    int tag = 0;
    for (int lap = 0; lap < 5; ++lap) {
        for (Cycle c : {Cycle{3}, Cycle{17}, Cycle{63}}) {
            const Cycle ready = c + static_cast<Cycle>(lap) * window;
            q.push(ready, tag);
            want.emplace_back(ready, tag);
            ++tag;
        }
    }
    std::stable_sort(want.begin(), want.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    // Drain incrementally, one window per step, like the engine does.
    std::vector<std::pair<Cycle, int>> got;
    for (Cycle now = 0; now < 6 * window; now += 7) {
        for (auto& e : drain(q, now))
            got.push_back(e);
    }
    EXPECT_EQ(got, want);
}

TEST(CalendarQueue, FarFutureEventsMigrate)
{
    CalendarQueue<int> q(64);
    const Cycle far = static_cast<Cycle>(q.window()) * 100;
    q.push(far, 1);
    q.push(5, 2);
    q.push(far + 1, 3);
    EXPECT_EQ(q.nextReady(), 5u);

    EXPECT_EQ(drain(q, far - 1),
              (std::vector<std::pair<Cycle, int>>{{5, 2}}));
    EXPECT_EQ(q.nextReady(), far);
    EXPECT_EQ(drain(q, far + 10),
              (std::vector<std::pair<Cycle, int>>{{far, 1},
                                                  {far + 1, 3}}));
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FarEventsKeepSeqOrderOnSameCycle)
{
    // Two pushes for one far cycle, interleaved with a near push;
    // after migration they must still drain in push order.
    CalendarQueue<int> q(64);
    const Cycle far = static_cast<Cycle>(q.window()) * 3 + 9;
    q.push(far, 1);
    q.push(2, 2);
    q.push(far, 3);
    const auto got = drain(q, far);
    const std::vector<std::pair<Cycle, int>> want{
        {2, 2}, {far, 1}, {far, 3}};
    EXPECT_EQ(got, want);
}

TEST(CalendarQueue, PushFromInsideDrainCallback)
{
    // The memory system pushes follow-up completions while tick()
    // drains (an L2 miss schedules its DRAM fill). New events are
    // always in the future; they must be delivered by later drains.
    CalendarQueue<int> q(64);
    q.push(10, 1);
    std::vector<std::pair<Cycle, int>> got;
    q.popUntil(10, [&](Cycle ready, int& v) {
        got.emplace_back(ready, v);
        if (v == 1)
            q.push(ready + 25, 2);
    });
    EXPECT_EQ(got, (std::vector<std::pair<Cycle, int>>{{10, 1}}));
    EXPECT_EQ(q.nextReady(), 35u);
    EXPECT_EQ(drain(q, 35),
              (std::vector<std::pair<Cycle, int>>{{35, 2}}));
}

TEST(CalendarQueue, MatchesReferenceHeapUnderChurn)
{
    // Pseudo-random schedule against a reference (ready, seq)-sorted
    // model: mixed near/far, duplicate cycles, monotone drains.
    CalendarQueue<int> q(256);
    std::uint64_t rng = 99;
    int tag = 0;
    Cycle now = 0;
    std::uint64_t seq = 0;
    std::vector<std::tuple<Cycle, std::uint64_t, int>> model;
    for (int step = 0; step < 2000; ++step) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const int burst = static_cast<int>((rng >> 40) % 4);
        for (int i = 0; i < burst; ++i) {
            rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
            // Mix of short latencies, window-sized and far-future.
            const Cycle delay = 1 + (rng >> 33) % 2000;
            q.push(now + delay, tag);
            model.emplace_back(now + delay, seq++, tag);
            ++tag;
        }
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        now += (rng >> 35) % 97;
        std::vector<std::pair<Cycle, int>> got = drain(q, now);
        std::stable_sort(model.begin(), model.end());
        std::vector<std::pair<Cycle, int>> want;
        std::size_t kept = 0;
        for (auto& [ready, s, value] : model) {
            if (ready <= now)
                want.emplace_back(ready, value);
            else
                model[kept++] = {ready, s, value};
        }
        model.resize(kept);
        ASSERT_EQ(got, want) << "at step " << step << " now " << now;
    }
    EXPECT_EQ(q.size(), model.size());
}

TEST(CalendarQueue, ClearResets)
{
    CalendarQueue<int> q(64);
    q.push(10, 1);
    q.push(static_cast<Cycle>(q.window()) * 50, 2);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextReady(), kNoEventReady);
    // Reusable from cycle 0 again after clear.
    q.push(3, 4);
    EXPECT_EQ(drain(q, 3),
              (std::vector<std::pair<Cycle, int>>{{3, 4}}));
}

} // namespace
} // namespace apres
