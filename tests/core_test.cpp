/**
 * @file
 * Integration tests for the SM pipeline: issue, scoreboard, LSU,
 * barriers, job refill and per-PC accounting, driven through a real
 * MemorySystem.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/sm.hpp"
#include "mem/memory_system.hpp"
#include "sched/lrr.hpp"

namespace apres {
namespace {

MemSystemConfig
memCfg()
{
    MemSystemConfig cfg;
    cfg.numPartitions = 2;
    cfg.l2HitLatency = 50;
    cfg.dram.baseLatency = 100;
    cfg.dram.serviceInterval = 2;
    return cfg;
}

SmConfig
smCfg(int warps = 4)
{
    SmConfig cfg;
    cfg.warpsPerSm = warps;
    cfg.warpsPerBlock = warps;
    cfg.jobsPerWarp = 1;
    cfg.lsu.l1HitLatency = 4;
    cfg.l1.hashSetIndex = false;
    return cfg;
}

/** Drive an SM + memory system until drained (or the cycle cap). */
Cycle
runToCompletion(Sm& sm, MemorySystem& mem, Cycle cap = 200000)
{
    Cycle now = 0;
    while (!sm.done() && now < cap) {
        mem.tick(now);
        sm.tick(now);
        ++now;
    }
    return now;
}

TEST(SmPipeline, ExecutesExpectedInstructionCount)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 2);
    Kernel k = b.build(5);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    Sm sm(0, smCfg(4), k, sched, nullptr, mem);
    const Cycle cycles = runToCompletion(sm, mem);
    ASSERT_TRUE(sm.done());
    EXPECT_GT(cycles, 0u);
    // 4 warps x (4-instruction body x 5 iterations + exit).
    EXPECT_EQ(sm.stats().issuedInstructions, 4u * (4 * 5 + 1));
    EXPECT_EQ(sm.stats().issuedLoads, 4u * 5);
}

TEST(SmPipeline, DependentAluStallsForLoad)
{
    // One warp, one load + dependent ALU: the ALU cannot issue before
    // the load returns (>= DRAM latency on a cold miss).
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    Kernel k = b.build(1);

    MemSystemConfig mc = memCfg();
    MemorySystem mem(mc);
    LrrScheduler sched;
    Sm sm(0, smCfg(1), k, sched, nullptr, mem);
    const Cycle cycles = runToCompletion(sm, mem);
    EXPECT_GE(cycles, mc.dram.baseLatency);
}

TEST(SmPipeline, IndependentLoadsOverlap)
{
    // Two independent loads to different lines take barely longer than
    // one (latencies overlap).
    const auto build = [](int loads) {
        KernelBuilder b("t");
        int last = kNoReg;
        for (int i = 0; i < loads; ++i) {
            last = b.load(std::make_unique<UniformGen>(
                0x1000 + static_cast<Addr>(i) * 4096));
        }
        b.alu({last}, 1);
        return b.build(1);
    };

    Kernel one = build(1);
    Kernel two = build(2);
    Cycle t1 = 0;
    Cycle t2 = 0;
    {
        MemorySystem mem(memCfg());
        LrrScheduler sched;
        Sm sm(0, smCfg(1), one, sched, nullptr, mem);
        t1 = runToCompletion(sm, mem);
    }
    {
        MemorySystem mem(memCfg());
        LrrScheduler sched;
        Sm sm(0, smCfg(1), two, sched, nullptr, mem);
        t2 = runToCompletion(sm, mem);
    }
    EXPECT_LT(t2, t1 + 30);
}

TEST(SmPipeline, ChainedLoadsSerialize)
{
    // A load whose address depends on a previous load pays both
    // latencies.
    KernelBuilder b("t");
    const int r0 = b.load(std::make_unique<UniformGen>(0x1000));
    const int r1 = b.load(std::make_unique<UniformGen>(0x9000), 4,
                          kInvalidPc, r0);
    b.alu({r1}, 1);
    Kernel k = b.build(1);

    MemSystemConfig mc = memCfg();
    MemorySystem mem(mc);
    LrrScheduler sched;
    Sm sm(0, smCfg(1), k, sched, nullptr, mem);
    const Cycle cycles = runToCompletion(sm, mem);
    EXPECT_GE(cycles, 2 * mc.dram.baseLatency);
}

TEST(SmPipeline, SecondAccessHitsL1)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    Kernel k = b.build(4);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    Sm sm(0, smCfg(1), k, sched, nullptr, mem);
    runToCompletion(sm, mem);
    EXPECT_EQ(sm.l1().stats().demandMisses, 1u);
    EXPECT_EQ(sm.l1().stats().demandHits, 3u);
}

TEST(SmPipeline, UncoalescedLoadProducesManyAccesses)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000), 128);
    b.alu({r}, 1);
    Kernel k = b.build(1);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    Sm sm(0, smCfg(1), k, sched, nullptr, mem);
    runToCompletion(sm, mem);
    // 32 lanes x 128 B apart = 32 distinct lines.
    EXPECT_EQ(sm.l1().stats().demandAccesses, 32u);
}

TEST(SmPipeline, BarrierSynchronizesWarps)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    b.barrier();
    Kernel k = b.build(2);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    Sm sm(0, smCfg(4), k, sched, nullptr, mem);
    runToCompletion(sm, mem);
    EXPECT_TRUE(sm.done());
}

TEST(SmPipeline, JobRefillRunsMultipleBlocks)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    Kernel k = b.build(3);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    SmConfig cfg = smCfg(2);
    cfg.jobsPerWarp = 3;
    Sm sm(0, cfg, k, sched, nullptr, mem);
    runToCompletion(sm, mem);
    ASSERT_TRUE(sm.done());
    // 2 warps x 3 jobs x (3-instr body x 3 iters + exit).
    EXPECT_EQ(sm.stats().issuedInstructions, 2u * 3 * (3 * 3 + 1));
}

TEST(SmPipeline, JobRefillContinuesIterations)
{
    // With a strided pattern, the refilled job continues the address
    // stream instead of re-reading the first lines.
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<StridedGen>(0x10000, 0, 4096));
    b.alu({r}, 1);
    Kernel k = b.build(2);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    SmConfig cfg = smCfg(1);
    cfg.jobsPerWarp = 2;
    Sm sm(0, cfg, k, sched, nullptr, mem);
    runToCompletion(sm, mem);
    // 4 distinct lines fetched: iterations 0..3 at 4 KB stride.
    EXPECT_EQ(sm.l1().stats().demandMisses, 4u);
}

TEST(SmPipeline, PerPcStatsTracked)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000), 4, 0x110);
    b.alu({r}, 1);
    Kernel k = b.build(4);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    Sm sm(0, smCfg(1), k, sched, nullptr, mem);
    runToCompletion(sm, mem);
    const auto& per_pc = sm.lsuStats().perPc;
    ASSERT_TRUE(per_pc.count(0x110));
    EXPECT_EQ(per_pc.at(0x110).accesses, 4u);
    EXPECT_EQ(per_pc.at(0x110).hits, 3u);
    EXPECT_DOUBLE_EQ(per_pc.at(0x110).missRate(), 0.25);
}

TEST(SmPipeline, StoresDoNotBlockCompletion)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.store(std::make_unique<StridedGen>(0x20000, 128, 4096), r);
    Kernel k = b.build(3);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    Sm sm(0, smCfg(2), k, sched, nullptr, mem);
    runToCompletion(sm, mem);
    EXPECT_TRUE(sm.done());
    EXPECT_EQ(sm.stats().issuedStores, 2u * 3);
    EXPECT_GT(sm.l1().stats().storeAccesses, 0u);
}

TEST(SmPipeline, PrefetchIssuerRespectsMshrGate)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    Kernel k = b.build(1);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    SmConfig cfg = smCfg(1);
    cfg.prefetchMshrGate = 0.0; // gate closed: all prefetches dropped
    Sm sm(0, cfg, k, sched, nullptr, mem);
    EXPECT_FALSE(sm.issuePrefetch(0x8000, 0x100, 0));
    EXPECT_EQ(sm.stats().prefetchesRequested, 1u);
    EXPECT_EQ(sm.stats().prefetchesIssued, 0u);
}

TEST(SmPipeline, PrefetchTravelsThroughMemory)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x1000));
    b.alu({r}, 1);
    Kernel k = b.build(1);

    MemorySystem mem(memCfg());
    LrrScheduler sched;
    Sm sm(0, smCfg(1), k, sched, nullptr, mem);
    EXPECT_TRUE(sm.issuePrefetch(0x8000, 0x100, 0));
    Cycle now = 0;
    while (now < 1000) {
        mem.tick(now);
        sm.tick(now);
        ++now;
    }
    EXPECT_TRUE(sm.l1().contains(0x8000));
    EXPECT_EQ(sm.l1().stats().prefetchFills, 1u);
}

} // namespace
} // namespace apres
