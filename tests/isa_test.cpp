/**
 * @file
 * Unit tests for the kernel IR: address generators and the builder.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "isa/address_gen.hpp"
#include "isa/kernel.hpp"

namespace apres {
namespace {

TEST(Mix64, DeterministicAndSpreading)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i)
        seen.insert(mix64(i) % 4096);
    // Random balls-in-bins coverage: 10k draws into 4096 buckets
    // reach ~91% of them (4096 * (1 - e^-2.44) ~ 3740).
    EXPECT_GT(seen.size(), 3500u);
}

TEST(UniformGen, AlwaysSameAddress)
{
    UniformGen gen(0x1000);
    for (int w = 0; w < 48; ++w) {
        for (std::uint64_t i = 0; i < 10; ++i)
            EXPECT_EQ(gen.base({0, w, i}), 0x1000u);
    }
}

TEST(SharedWindowGen, StaysInsideWindow)
{
    const Addr base = 0x10000;
    const std::uint64_t footprint = 4096;
    SharedWindowGen gen(base, footprint, 4352, 26112);
    for (int w = 0; w < 48; ++w) {
        for (std::uint64_t i = 0; i < 1000; ++i) {
            const Addr a = gen.base({0, w, i});
            EXPECT_GE(a, base);
            EXPECT_LT(a, base + footprint);
        }
    }
}

TEST(SharedWindowGen, NegativeStrideWrapsPositively)
{
    const Addr base = 0x10000;
    SharedWindowGen gen(base, 4096, -512, -64);
    for (int w = 0; w < 48; ++w) {
        for (std::uint64_t i = 0; i < 100; ++i) {
            const Addr a = gen.base({0, w, i});
            EXPECT_GE(a, base);
            EXPECT_LT(a, base + 4096u);
        }
    }
}

TEST(SharedWindowGen, WarpSkewSeparatesWarps)
{
    SharedWindowGen gen(0, 1 << 20, 0, 4352);
    EXPECT_EQ(gen.base({0, 1, 0}) - gen.base({0, 0, 0}), 4352u);
    EXPECT_EQ(gen.base({0, 7, 3}) - gen.base({0, 6, 3}), 4352u);
}

TEST(SharedWindowGen, SmOffsetSeparatesSms)
{
    SharedWindowGen gen(0x1000, 4096, 128, 0, 1 << 20);
    EXPECT_EQ(gen.base({1, 0, 0}) - gen.base({0, 0, 0}), 1u << 20);
}

TEST(SharedWindowGen, WrapsAfterFootprint)
{
    SharedWindowGen gen(0, 1024, 128, 0);
    // 1024/128 = 8 iterations per wrap.
    EXPECT_EQ(gen.base({0, 0, 0}), gen.base({0, 0, 8}));
    EXPECT_EQ(gen.base({0, 0, 3}), gen.base({0, 0, 11}));
}

TEST(StridedGen, LinearInWarpAndIteration)
{
    StridedGen gen(0x1000, 2048, 98304);
    const AddrCtx base_ctx{0, 0, 0};
    EXPECT_EQ(gen.base(base_ctx), 0x1000u);
    EXPECT_EQ(gen.base({0, 3, 0}), 0x1000u + 3 * 2048);
    EXPECT_EQ(gen.base({0, 0, 5}), 0x1000u + 5 * 98304);
    EXPECT_EQ(gen.base({0, 7, 9}), 0x1000u + 7 * 2048 + 9 * 98304);
}

TEST(StridedGen, NegativeStrideMatchesNw)
{
    // NW's Table I stride: -1966080 between adjacent warps.
    const Addr base = 0x20'0000'0000ull;
    StridedGen gen(base, -1966080, -1966080 * 48);
    const Addr w0 = gen.base({0, 0, 0});
    const Addr w1 = gen.base({0, 1, 0});
    EXPECT_EQ(static_cast<std::int64_t>(w1) - static_cast<std::int64_t>(w0),
              -1966080);
}

TEST(StridedGen, ReportsWarpStride)
{
    StridedGen gen(0, 4352, 0);
    EXPECT_EQ(gen.warpStrideBytes(), 4352);
}

TEST(IrregularGen, DeterministicPerContext)
{
    IrregularGen gen(0, 1 << 20, 4, 2, 99);
    EXPECT_EQ(gen.base({0, 5, 17}), gen.base({0, 5, 17}));
}

TEST(IrregularGen, SharingGroupsAreStriped)
{
    // shareWarps=8 over 48 warps -> 6 stripes: the partners of warp w
    // are w+6, w+12, ... (spread across the ID space so consecutive
    // warps never share and no inter-warp stride appears).
    IrregularGen gen(0, 1 << 20, 8, 4, 7);
    const Addr ref = gen.base({0, 0, 0});
    for (int w = 6; w < 48; w += 6)
        EXPECT_EQ(gen.base({0, w, 0}), ref);
    // Iterations 0..3 share one iteration group.
    for (std::uint64_t i = 1; i < 4; ++i)
        EXPECT_EQ(gen.base({0, 0, i}), ref);
    // Adjacent warps belong to different groups.
    EXPECT_NE(gen.base({0, 1, 0}), ref);
}

TEST(IrregularGen, StaysInFootprint)
{
    const std::uint64_t footprint = 256 * 1024;
    IrregularGen gen(0x4000'0000, footprint, 2, 2, 3);
    for (int w = 0; w < 48; ++w) {
        for (std::uint64_t i = 0; i < 200; ++i) {
            const Addr a = gen.base({0, w, i});
            EXPECT_GE(a, 0x4000'0000u);
            EXPECT_LT(a, 0x4000'0000u + footprint);
        }
    }
}

TEST(ZipfGen, HotLinesAbsorbMostAccesses)
{
    ZipfGen gen(0, 4096, 1.1, 11);
    std::map<Addr, int> counts;
    for (int w = 0; w < 48; ++w) {
        for (std::uint64_t i = 0; i < 500; ++i)
            counts[gen.base({0, w, i})]++;
    }
    // Top-32 lines should hold a large share of the 24000 accesses.
    std::vector<int> freq;
    for (const auto& [addr, n] : counts)
        freq.push_back(n);
    std::sort(freq.rbegin(), freq.rend());
    int top = 0;
    for (std::size_t i = 0; i < 32 && i < freq.size(); ++i)
        top += freq[i];
    EXPECT_GT(top, 24000 / 4);
}

TEST(ZipfGen, LineAligned)
{
    ZipfGen gen(0x1000'0000, 512, 0.9, 5);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(gen.base({0, 0, i}) % 128, 0u);
}

TEST(KernelBuilder, BuildsLoopWithBranchAndExit)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x100));
    b.alu({r}, 2);
    Kernel k = b.build(10);

    ASSERT_EQ(k.code().size(), 5u); // load, alu, alu, branch, exit
    EXPECT_EQ(k.at(0).op, Opcode::kLoad);
    EXPECT_EQ(k.at(1).op, Opcode::kAlu);
    EXPECT_EQ(k.at(2).op, Opcode::kAlu);
    EXPECT_EQ(k.at(3).op, Opcode::kBranch);
    EXPECT_EQ(k.at(3).branchTarget, 0);
    EXPECT_EQ(k.at(4).op, Opcode::kExit);
    EXPECT_EQ(k.tripCount(), 10u);
    EXPECT_EQ(k.numLoads(), 1);
}

TEST(KernelBuilder, RegisterChaining)
{
    KernelBuilder b("t");
    const int r0 = b.load(std::make_unique<UniformGen>(0x100));
    const int r1 = b.alu({r0}, 1);
    const int r2 = b.alu({r1}, 1);
    EXPECT_NE(r0, r1);
    EXPECT_NE(r1, r2);
    Kernel k = b.build(1);
    EXPECT_EQ(k.at(1).src[0], r0);
    EXPECT_EQ(k.at(2).src[0], r1);
    EXPECT_EQ(k.numRegs(), 3);
}

TEST(KernelBuilder, LoadAddressDependency)
{
    KernelBuilder b("t");
    const int r0 = b.load(std::make_unique<UniformGen>(0x100));
    const int r1 = b.load(std::make_unique<UniformGen>(0x200), 4,
                          kInvalidPc, r0);
    (void)r1;
    Kernel k = b.build(1);
    EXPECT_EQ(k.at(1).src[0], r0);
}

TEST(KernelBuilder, ExplicitPcsRespected)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x100), 4, 0x110);
    b.alu({r}, 1);
    b.load(std::make_unique<UniformGen>(0x200), 4, 0xF0);
    Kernel k = b.build(1);
    EXPECT_EQ(k.at(0).pc, 0x110u);
    EXPECT_EQ(k.at(2).pc, 0xF0u);
    // Auto PCs are unique.
    std::set<Pc> pcs;
    for (const auto& instr : k.code())
        pcs.insert(instr.pc);
    EXPECT_EQ(pcs.size(), k.code().size());
}

TEST(KernelBuilder, DynamicInstructionCount)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x100));
    b.alu({r}, 2);
    Kernel k = b.build(10);
    // Body (4 instructions incl. branch) x 10 + exit.
    EXPECT_EQ(k.dynamicInstructionsPerWarp(), 4u * 10 + 1);
}

TEST(KernelBuilder, StoreHasNoDestination)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x100));
    b.store(std::make_unique<UniformGen>(0x200), r);
    Kernel k = b.build(1);
    EXPECT_EQ(k.at(1).op, Opcode::kStore);
    EXPECT_EQ(k.at(1).dst, kNoReg);
    EXPECT_EQ(k.at(1).src[0], r);
}

TEST(KernelBuilder, SfuLatency)
{
    KernelBuilder b("t");
    const int r = b.load(std::make_unique<UniformGen>(0x100));
    b.sfu({r}, 20);
    Kernel k = b.build(1);
    EXPECT_EQ(k.at(1).op, Opcode::kSfu);
    EXPECT_EQ(k.at(1).latency, 20);
}

TEST(Instruction, MemoryClassification)
{
    Instruction load;
    load.op = Opcode::kLoad;
    Instruction alu;
    alu.op = Opcode::kAlu;
    Instruction store;
    store.op = Opcode::kStore;
    EXPECT_TRUE(load.isMemory());
    EXPECT_TRUE(store.isMemory());
    EXPECT_FALSE(alu.isMemory());
}

} // namespace
} // namespace apres
