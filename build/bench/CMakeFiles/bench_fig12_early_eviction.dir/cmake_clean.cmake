file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_early_eviction.dir/bench_fig12_early_eviction.cpp.o"
  "CMakeFiles/bench_fig12_early_eviction.dir/bench_fig12_early_eviction.cpp.o.d"
  "bench_fig12_early_eviction"
  "bench_fig12_early_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_early_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
