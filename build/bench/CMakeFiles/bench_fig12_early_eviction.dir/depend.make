# Empty dependencies file for bench_fig12_early_eviction.
# This may be replaced when dependencies are built.
