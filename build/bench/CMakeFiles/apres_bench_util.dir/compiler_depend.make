# Empty compiler generated dependencies file for apres_bench_util.
# This may be replaced when dependencies are built.
