file(REMOVE_RECURSE
  "CMakeFiles/apres_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/apres_bench_util.dir/bench_util.cpp.o.d"
  "libapres_bench_util.a"
  "libapres_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
