file(REMOVE_RECURSE
  "libapres_bench_util.a"
)
