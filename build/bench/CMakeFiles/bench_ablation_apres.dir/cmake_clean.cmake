file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_apres.dir/bench_ablation_apres.cpp.o"
  "CMakeFiles/bench_ablation_apres.dir/bench_ablation_apres.cpp.o.d"
  "bench_ablation_apres"
  "bench_ablation_apres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_apres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
