# Empty dependencies file for bench_ablation_apres.
# This may be replaced when dependencies are built.
