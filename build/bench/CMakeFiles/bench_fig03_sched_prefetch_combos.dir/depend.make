# Empty dependencies file for bench_fig03_sched_prefetch_combos.
# This may be replaced when dependencies are built.
