file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_sched_prefetch_combos.dir/bench_fig03_sched_prefetch_combos.cpp.o"
  "CMakeFiles/bench_fig03_sched_prefetch_combos.dir/bench_fig03_sched_prefetch_combos.cpp.o.d"
  "bench_fig03_sched_prefetch_combos"
  "bench_fig03_sched_prefetch_combos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_sched_prefetch_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
