# Empty dependencies file for bench_fig02_miss_breakdown.
# This may be replaced when dependencies are built.
