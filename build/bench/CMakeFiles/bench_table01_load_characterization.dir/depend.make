# Empty dependencies file for bench_table01_load_characterization.
# This may be replaced when dependencies are built.
