file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ccws.dir/bench_ablation_ccws.cpp.o"
  "CMakeFiles/bench_ablation_ccws.dir/bench_ablation_ccws.cpp.o.d"
  "bench_ablation_ccws"
  "bench_ablation_ccws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ccws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
