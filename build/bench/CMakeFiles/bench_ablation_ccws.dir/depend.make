# Empty dependencies file for bench_ablation_ccws.
# This may be replaced when dependencies are built.
