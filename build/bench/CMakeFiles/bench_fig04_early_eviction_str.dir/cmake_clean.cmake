file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_early_eviction_str.dir/bench_fig04_early_eviction_str.cpp.o"
  "CMakeFiles/bench_fig04_early_eviction_str.dir/bench_fig04_early_eviction_str.cpp.o.d"
  "bench_fig04_early_eviction_str"
  "bench_fig04_early_eviction_str.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_early_eviction_str.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
