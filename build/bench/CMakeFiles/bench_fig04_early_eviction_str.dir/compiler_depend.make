# Empty compiler generated dependencies file for bench_fig04_early_eviction_str.
# This may be replaced when dependencies are built.
