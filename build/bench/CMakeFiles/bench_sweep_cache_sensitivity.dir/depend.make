# Empty dependencies file for bench_sweep_cache_sensitivity.
# This may be replaced when dependencies are built.
