file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_cache_sensitivity.dir/bench_sweep_cache_sensitivity.cpp.o"
  "CMakeFiles/bench_sweep_cache_sensitivity.dir/bench_sweep_cache_sensitivity.cpp.o.d"
  "bench_sweep_cache_sensitivity"
  "bench_sweep_cache_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_cache_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
