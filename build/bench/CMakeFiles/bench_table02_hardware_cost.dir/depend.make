# Empty dependencies file for bench_table02_hardware_cost.
# This may be replaced when dependencies are built.
