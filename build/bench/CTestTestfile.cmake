# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table02 "/root/repo/build/bench/bench_table02_hardware_cost")
set_tests_properties(bench_smoke_table02 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_debug_run "/root/repo/build/bench/debug_run" "KM" "laws" "sap" "0.02")
set_tests_properties(bench_smoke_debug_run PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
