file(REMOVE_RECURSE
  "CMakeFiles/apres_common.dir/csv.cpp.o"
  "CMakeFiles/apres_common.dir/csv.cpp.o.d"
  "CMakeFiles/apres_common.dir/log.cpp.o"
  "CMakeFiles/apres_common.dir/log.cpp.o.d"
  "CMakeFiles/apres_common.dir/rng.cpp.o"
  "CMakeFiles/apres_common.dir/rng.cpp.o.d"
  "CMakeFiles/apres_common.dir/stats.cpp.o"
  "CMakeFiles/apres_common.dir/stats.cpp.o.d"
  "libapres_common.a"
  "libapres_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
