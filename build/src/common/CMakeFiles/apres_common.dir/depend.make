# Empty dependencies file for apres_common.
# This may be replaced when dependencies are built.
