file(REMOVE_RECURSE
  "libapres_common.a"
)
