file(REMOVE_RECURSE
  "CMakeFiles/apres_isa.dir/address_gen.cpp.o"
  "CMakeFiles/apres_isa.dir/address_gen.cpp.o.d"
  "CMakeFiles/apres_isa.dir/kernel.cpp.o"
  "CMakeFiles/apres_isa.dir/kernel.cpp.o.d"
  "CMakeFiles/apres_isa.dir/kernel_text.cpp.o"
  "CMakeFiles/apres_isa.dir/kernel_text.cpp.o.d"
  "libapres_isa.a"
  "libapres_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
