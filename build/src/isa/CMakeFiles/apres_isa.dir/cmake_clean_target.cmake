file(REMOVE_RECURSE
  "libapres_isa.a"
)
