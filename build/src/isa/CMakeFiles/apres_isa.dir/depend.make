# Empty dependencies file for apres_isa.
# This may be replaced when dependencies are built.
