
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/address_gen.cpp" "src/isa/CMakeFiles/apres_isa.dir/address_gen.cpp.o" "gcc" "src/isa/CMakeFiles/apres_isa.dir/address_gen.cpp.o.d"
  "/root/repo/src/isa/kernel.cpp" "src/isa/CMakeFiles/apres_isa.dir/kernel.cpp.o" "gcc" "src/isa/CMakeFiles/apres_isa.dir/kernel.cpp.o.d"
  "/root/repo/src/isa/kernel_text.cpp" "src/isa/CMakeFiles/apres_isa.dir/kernel_text.cpp.o" "gcc" "src/isa/CMakeFiles/apres_isa.dir/kernel_text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/apres_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
