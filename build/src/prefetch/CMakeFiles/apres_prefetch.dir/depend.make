# Empty dependencies file for apres_prefetch.
# This may be replaced when dependencies are built.
