file(REMOVE_RECURSE
  "CMakeFiles/apres_prefetch.dir/sld.cpp.o"
  "CMakeFiles/apres_prefetch.dir/sld.cpp.o.d"
  "CMakeFiles/apres_prefetch.dir/str.cpp.o"
  "CMakeFiles/apres_prefetch.dir/str.cpp.o.d"
  "libapres_prefetch.a"
  "libapres_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
