file(REMOVE_RECURSE
  "libapres_prefetch.a"
)
