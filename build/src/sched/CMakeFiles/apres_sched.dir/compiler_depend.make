# Empty compiler generated dependencies file for apres_sched.
# This may be replaced when dependencies are built.
