file(REMOVE_RECURSE
  "CMakeFiles/apres_sched.dir/ccws.cpp.o"
  "CMakeFiles/apres_sched.dir/ccws.cpp.o.d"
  "CMakeFiles/apres_sched.dir/gto.cpp.o"
  "CMakeFiles/apres_sched.dir/gto.cpp.o.d"
  "CMakeFiles/apres_sched.dir/lrr.cpp.o"
  "CMakeFiles/apres_sched.dir/lrr.cpp.o.d"
  "CMakeFiles/apres_sched.dir/mascar.cpp.o"
  "CMakeFiles/apres_sched.dir/mascar.cpp.o.d"
  "CMakeFiles/apres_sched.dir/pa_twolevel.cpp.o"
  "CMakeFiles/apres_sched.dir/pa_twolevel.cpp.o.d"
  "libapres_sched.a"
  "libapres_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
