
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/ccws.cpp" "src/sched/CMakeFiles/apres_sched.dir/ccws.cpp.o" "gcc" "src/sched/CMakeFiles/apres_sched.dir/ccws.cpp.o.d"
  "/root/repo/src/sched/gto.cpp" "src/sched/CMakeFiles/apres_sched.dir/gto.cpp.o" "gcc" "src/sched/CMakeFiles/apres_sched.dir/gto.cpp.o.d"
  "/root/repo/src/sched/lrr.cpp" "src/sched/CMakeFiles/apres_sched.dir/lrr.cpp.o" "gcc" "src/sched/CMakeFiles/apres_sched.dir/lrr.cpp.o.d"
  "/root/repo/src/sched/mascar.cpp" "src/sched/CMakeFiles/apres_sched.dir/mascar.cpp.o" "gcc" "src/sched/CMakeFiles/apres_sched.dir/mascar.cpp.o.d"
  "/root/repo/src/sched/pa_twolevel.cpp" "src/sched/CMakeFiles/apres_sched.dir/pa_twolevel.cpp.o" "gcc" "src/sched/CMakeFiles/apres_sched.dir/pa_twolevel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/apres_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/apres_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/apres_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
