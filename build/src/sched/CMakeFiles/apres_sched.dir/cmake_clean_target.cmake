file(REMOVE_RECURSE
  "libapres_sched.a"
)
