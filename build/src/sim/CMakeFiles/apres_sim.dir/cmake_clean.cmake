file(REMOVE_RECURSE
  "CMakeFiles/apres_sim.dir/gpu.cpp.o"
  "CMakeFiles/apres_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/apres_sim.dir/timeline.cpp.o"
  "CMakeFiles/apres_sim.dir/timeline.cpp.o.d"
  "libapres_sim.a"
  "libapres_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
