# Empty dependencies file for apres_sim.
# This may be replaced when dependencies are built.
