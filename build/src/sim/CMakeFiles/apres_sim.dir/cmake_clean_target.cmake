file(REMOVE_RECURSE
  "libapres_sim.a"
)
