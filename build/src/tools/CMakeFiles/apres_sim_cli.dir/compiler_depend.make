# Empty compiler generated dependencies file for apres_sim_cli.
# This may be replaced when dependencies are built.
