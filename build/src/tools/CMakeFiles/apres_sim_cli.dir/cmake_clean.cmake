file(REMOVE_RECURSE
  "CMakeFiles/apres_sim_cli.dir/apres_sim_main.cpp.o"
  "CMakeFiles/apres_sim_cli.dir/apres_sim_main.cpp.o.d"
  "apres_sim"
  "apres_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
