file(REMOVE_RECURSE
  "CMakeFiles/apres_apres.dir/laws.cpp.o"
  "CMakeFiles/apres_apres.dir/laws.cpp.o.d"
  "CMakeFiles/apres_apres.dir/sap.cpp.o"
  "CMakeFiles/apres_apres.dir/sap.cpp.o.d"
  "libapres_apres.a"
  "libapres_apres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_apres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
