# Empty compiler generated dependencies file for apres_apres.
# This may be replaced when dependencies are built.
