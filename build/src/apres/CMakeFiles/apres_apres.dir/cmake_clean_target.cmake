file(REMOVE_RECURSE
  "libapres_apres.a"
)
