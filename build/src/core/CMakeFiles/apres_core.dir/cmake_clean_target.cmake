file(REMOVE_RECURSE
  "libapres_core.a"
)
