file(REMOVE_RECURSE
  "CMakeFiles/apres_core.dir/lsu.cpp.o"
  "CMakeFiles/apres_core.dir/lsu.cpp.o.d"
  "CMakeFiles/apres_core.dir/sm.cpp.o"
  "CMakeFiles/apres_core.dir/sm.cpp.o.d"
  "libapres_core.a"
  "libapres_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
