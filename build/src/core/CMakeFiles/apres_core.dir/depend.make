# Empty dependencies file for apres_core.
# This may be replaced when dependencies are built.
