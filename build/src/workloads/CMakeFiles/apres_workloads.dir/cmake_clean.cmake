file(REMOVE_RECURSE
  "CMakeFiles/apres_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/apres_workloads.dir/benchmarks.cpp.o.d"
  "CMakeFiles/apres_workloads.dir/characterize.cpp.o"
  "CMakeFiles/apres_workloads.dir/characterize.cpp.o.d"
  "libapres_workloads.a"
  "libapres_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
