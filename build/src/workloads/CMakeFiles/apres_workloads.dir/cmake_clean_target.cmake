file(REMOVE_RECURSE
  "libapres_workloads.a"
)
