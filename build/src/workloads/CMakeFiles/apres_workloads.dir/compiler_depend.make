# Empty compiler generated dependencies file for apres_workloads.
# This may be replaced when dependencies are built.
