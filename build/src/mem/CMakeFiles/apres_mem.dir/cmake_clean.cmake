file(REMOVE_RECURSE
  "CMakeFiles/apres_mem.dir/cache.cpp.o"
  "CMakeFiles/apres_mem.dir/cache.cpp.o.d"
  "CMakeFiles/apres_mem.dir/coalescer.cpp.o"
  "CMakeFiles/apres_mem.dir/coalescer.cpp.o.d"
  "CMakeFiles/apres_mem.dir/dram.cpp.o"
  "CMakeFiles/apres_mem.dir/dram.cpp.o.d"
  "CMakeFiles/apres_mem.dir/memory_system.cpp.o"
  "CMakeFiles/apres_mem.dir/memory_system.cpp.o.d"
  "libapres_mem.a"
  "libapres_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apres_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
