file(REMOVE_RECURSE
  "libapres_mem.a"
)
