# Empty compiler generated dependencies file for apres_mem.
# This may be replaced when dependencies are built.
