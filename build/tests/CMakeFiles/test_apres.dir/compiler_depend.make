# Empty compiler generated dependencies file for test_apres.
# This may be replaced when dependencies are built.
