file(REMOVE_RECURSE
  "CMakeFiles/test_apres.dir/apres_test.cpp.o"
  "CMakeFiles/test_apres.dir/apres_test.cpp.o.d"
  "test_apres"
  "test_apres.pdb"
  "test_apres[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
