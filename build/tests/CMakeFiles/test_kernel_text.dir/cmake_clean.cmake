file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_text.dir/kernel_text_test.cpp.o"
  "CMakeFiles/test_kernel_text.dir/kernel_text_test.cpp.o.d"
  "test_kernel_text"
  "test_kernel_text.pdb"
  "test_kernel_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
