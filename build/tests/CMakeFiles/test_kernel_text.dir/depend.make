# Empty dependencies file for test_kernel_text.
# This may be replaced when dependencies are built.
