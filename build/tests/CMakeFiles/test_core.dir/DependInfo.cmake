
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/test_core.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/apres_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/apres_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/apres_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/apres/CMakeFiles/apres_apres.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/apres_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/apres_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apres_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
