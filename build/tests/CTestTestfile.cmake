# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_apres[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_text[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_validation[1]_include.cmake")
include("/root/repo/build/tests/test_shared_memory[1]_include.cmake")
