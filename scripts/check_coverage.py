#!/usr/bin/env python3
"""Gate line coverage from an lcov tracefile.

Parses the DA:<line>,<hits> records of an lcov .info file (as produced
by `lcov --capture`) and fails when total line coverage over the
selected files falls below the threshold. Parsing the tracefile
directly keeps the gate independent of lcov's --summary output format,
which changes across distro versions.

Usage:
    python3 scripts/check_coverage.py coverage.info --min 80 \
        [--match src/apres --match src/common] \
        [--floor src/serve=80 --floor src/sim=75]

--floor adds per-directory gates on top of the aggregate --min: each
PATTERN=PCT selects the files whose path contains PATTERN and fails
when their combined line coverage is below PCT. This keeps one
well-covered directory from masking an untested one inside the same
aggregate.
"""

import argparse
import sys
from collections import defaultdict


def parse_tracefile(path):
    """Return {source_file: (covered_lines, instrumented_lines)}."""
    per_file = defaultdict(lambda: [0, 0])
    current = None
    # Later records for the same file (e.g. from several test
    # binaries) are line-wise OR-ed, matching lcov's own merge.
    hits = defaultdict(dict)
    with open(path) as f:
        for raw in f:
            line = raw.strip()
            if line.startswith("SF:"):
                current = line[3:]
            elif line.startswith("DA:") and current is not None:
                lineno, _, count = line[3:].partition(",")
                count = int(count.split(",")[0])
                prev = hits[current].get(lineno, 0)
                hits[current][lineno] = max(prev, count)
            elif line == "end_of_record":
                current = None
    for path_, lines in hits.items():
        covered = sum(1 for c in lines.values() if c > 0)
        per_file[path_] = [covered, len(lines)]
    return per_file


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("tracefile", help="lcov .info file")
    parser.add_argument(
        "--min", type=float, default=80.0, help="minimum line coverage %%"
    )
    parser.add_argument(
        "--match",
        action="append",
        default=[],
        help="only count files whose path contains this substring "
        "(repeatable; default: all files in the tracefile)",
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="PATTERN=PCT",
        help="additional per-directory gate: files whose path contains "
        "PATTERN must reach PCT%% line coverage (repeatable)",
    )
    args = parser.parse_args()

    floors = []
    for spec in args.floor:
        pattern, sep, pct = spec.partition("=")
        if not sep or not pattern:
            print(f"error: bad --floor '{spec}', want PATTERN=PCT",
                  file=sys.stderr)
            return 2
        try:
            floors.append((pattern, float(pct)))
        except ValueError:
            print(f"error: bad --floor percentage in '{spec}'",
                  file=sys.stderr)
            return 2

    per_file = parse_tracefile(args.tracefile)
    selected = {
        path: counts
        for path, counts in per_file.items()
        if not args.match or any(m in path for m in args.match)
    }
    if not selected:
        print(
            f"error: no files matching {args.match} in {args.tracefile}",
            file=sys.stderr,
        )
        return 1

    total_covered = 0
    total_lines = 0
    width = max(len(p) for p in selected)
    for path in sorted(selected):
        covered, lines = selected[path]
        total_covered += covered
        total_lines += lines
        pct = 100.0 * covered / lines if lines else 100.0
        print(f"{path:<{width}}  {covered:>5}/{lines:<5}  {pct:6.2f}%")

    total_pct = 100.0 * total_covered / total_lines if total_lines else 0.0
    print(
        f"\nTOTAL {total_covered}/{total_lines} lines = {total_pct:.2f}% "
        f"(threshold {args.min:.2f}%)"
    )
    failed = total_pct < args.min
    if failed:
        print("FAIL: coverage below threshold", file=sys.stderr)

    # Per-directory floors run against the full tracefile, not the
    # --match selection, so a floor can gate a directory the aggregate
    # does not include.
    for pattern, floor_pct in floors:
        group = [c for p, c in per_file.items() if pattern in p]
        if not group:
            print(f"FAIL: --floor {pattern}: no files matched",
                  file=sys.stderr)
            failed = True
            continue
        covered = sum(c for c, _ in group)
        lines = sum(n for _, n in group)
        pct = 100.0 * covered / lines if lines else 100.0
        verdict = "OK" if pct >= floor_pct else "FAIL"
        print(f"{verdict} floor {pattern}: {covered}/{lines} lines = "
              f"{pct:.2f}% (floor {floor_pct:.2f}%)")
        failed = failed or pct < floor_pct

    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
