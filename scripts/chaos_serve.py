#!/usr/bin/env python3
"""Chaos harness for apres_serve: hostile-environment scenarios
against a LIVE daemon, driven through the deterministic fault
injection seam (src/common/fault_inject.hpp, armed with
--fault-inject / APRES_FAULT_INJECT).

Scenarios (each starts its own daemon in a scratch directory):

  enospc    disk full on the cache write path: the daemon degrades
            the disk tier to read-only, keeps serving, and counts
            every failure instead of crashing.
  eio-read  I/O error on the cache read path: degrade to memory-only,
            re-simulate, keep serving.
  kill9     kill -9 mid-entry-write (a sleep fault holds the temp
            file open), plus planted crash artifacts; the restarted
            daemon scrubs them and warm results stay bitwise
            identical to cold ones.
  corrupt   a cached entry is corrupted on disk between restarts; it
            is repaired away, never served, and the re-simulated
            result is bitwise identical to the original.
  overload  a burst against a 1-dispatcher daemon with queue depth 1:
            excess connections get typed {"type":"overloaded"} sheds
            with retryAfterMs, and a backoff client is eventually
            served once the queue drains.

Every scenario also asserts the daemon process never crashed or
wedged: it must still answer ping and exit cleanly on shutdown.

usage: chaos_serve.py [--serve PATH] [--log FILE] [--scenario NAME]
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time


LOG_LINES = []


def log(message):
    line = f"[chaos] {message}"
    print(line, flush=True)
    LOG_LINES.append(line)


def serve_request(socket_path, doc, timeout=60.0):
    """One request/response round trip; returns (parsed, raw_text)."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(timeout)
        s.connect(socket_path)
        s.sendall(json.dumps(doc).encode())
        s.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks).decode()
    return json.loads(raw), raw


def raw_result_texts(response_text):
    """Raw text of every runs[i].result object (string-aware brace
    matching — the same bitwise contract as check_serve_cache.py)."""
    marker = '"result": {'
    results = []
    pos = 0
    while True:
        pos = response_text.find(marker, pos)
        if pos == -1:
            return results
        start = pos + len(marker) - 1
        depth = 0
        in_string = False
        i = start
        while i < len(response_text):
            c = response_text[i]
            if in_string:
                if c == "\\":
                    i += 1
                elif c == '"':
                    in_string = False
            elif c == '"':
                in_string = True
            elif c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    results.append(response_text[start:i + 1])
                    break
            i += 1
        else:
            raise ValueError("unbalanced result object")
        pos = i


class ChaosFailure(AssertionError):
    pass


def require(condition, message):
    if condition:
        log(f"ok   {message}")
    else:
        log(f"FAIL {message}")
        raise ChaosFailure(message)


class Daemon:
    """A live apres_serve under test."""

    def __init__(self, serve_bin, scratch, name, extra_args=(),
                 fault_spec=None):
        self.socket_path = os.path.join(scratch, f"{name}.sock")
        self.cache_dir = os.path.join(scratch, "cache")
        args = [serve_bin, "--socket", self.socket_path,
                "--cache-dir", self.cache_dir, "--threads", "1",
                *extra_args]
        if fault_spec:
            args += ["--fault-inject", fault_spec]
        self.proc = subprocess.Popen(
            args, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        self._wait_ready()

    def _wait_ready(self, timeout=15.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise ChaosFailure(
                    "daemon died during startup: "
                    + self.proc.stderr.read().decode(errors="replace"))
            try:
                response, _ = serve_request(self.socket_path,
                                            {"type": "ping"}, timeout=2.0)
                if response.get("type") == "pong":
                    return
            except (OSError, json.JSONDecodeError):
                time.sleep(0.05)
        raise ChaosFailure("daemon did not become ready")

    def alive(self):
        return self.proc.poll() is None

    def stats(self):
        response, _ = serve_request(self.socket_path, {"type": "stats"})
        return response

    def shutdown_clean(self, timeout=30.0):
        """The no-crash/no-wedge gate: ping, shutdown, clean exit."""
        require(self.alive(), "daemon process is still alive")
        response, _ = serve_request(self.socket_path, {"type": "ping"})
        require(response.get("type") == "pong",
                "daemon still answers ping")
        response, _ = serve_request(self.socket_path,
                                    {"type": "shutdown"})
        require(response.get("type") == "bye",
                "daemon acknowledged shutdown")
        try:
            code = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise ChaosFailure("daemon wedged on shutdown")
        require(code == 0, f"daemon exited cleanly (code {code})")

    def kill9(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()


def km_request(label, seed=12345, scale=0.01):
    return {"type": "run",
            "jobs": [{"label": label, "workload": "KM", "scale": scale,
                      "overrides": {"seed": seed}}]}


# --------------------------------------------------------------------
# Scenarios.
# --------------------------------------------------------------------

def scenario_enospc(serve_bin, scratch):
    """Disk full while persisting entries: degrade to read-only."""
    daemon = Daemon(serve_bin, scratch, "enospc",
                    fault_spec="cache.write=enospc@2+")
    response, raw_a = serve_request(daemon.socket_path,
                                    km_request("a", seed=1))
    require(response["runs"][0]["result"]["status"] == "ok",
            "first store (before the disk fills) succeeds")
    response, _ = serve_request(daemon.socket_path,
                                km_request("b", seed=2))
    require(response["runs"][0]["result"]["status"] == "ok",
            "request during ENOSPC still returns a clean result")

    cache = daemon.stats()["cache"]
    require(cache["diskMode"] == "readOnly",
            "disk tier degraded to readOnly")
    require(cache["writeFailures"] >= 1, "write failure was counted")
    require(cache["degradations"] == 1, "exactly one ladder transition")

    response, _ = serve_request(daemon.socket_path,
                                km_request("c", seed=3))
    require(response["runs"][0]["result"]["status"] == "ok",
            "read-only daemon keeps serving new configurations")
    require(daemon.stats()["cache"]["storesSkippedDegraded"] >= 1,
            "skipped stores are counted, not silently dropped")

    # The entry persisted before the failure still serves bitwise.
    response, raw_a2 = serve_request(daemon.socket_path,
                                     km_request("a", seed=1))
    require(response["runs"][0]["cached"],
            "pre-failure entry still answers from cache")
    require(raw_result_texts(raw_a) == raw_result_texts(raw_a2),
            "cached result bitwise-identical under ENOSPC")
    daemon.shutdown_clean()


def scenario_eio_read(serve_bin, scratch):
    """I/O errors reading the disk tier: degrade to memory-only."""
    seeder = Daemon(serve_bin, scratch, "eio_seed")
    _, raw_cold = serve_request(seeder.socket_path,
                                km_request("a", seed=7))
    seeder.shutdown_clean()

    daemon = Daemon(serve_bin, scratch, "eio",
                    fault_spec="cache.read=eio")
    response, raw_warm = serve_request(daemon.socket_path,
                                       km_request("a", seed=7))
    require(response["runs"][0]["result"]["status"] == "ok",
            "unreadable disk tier still produces a clean result")
    require(not response["runs"][0]["cached"],
            "the broken disk entry was not served")
    require(raw_result_texts(raw_cold) == raw_result_texts(raw_warm),
            "re-simulated result bitwise-identical to the cached one")
    cache = daemon.stats()["cache"]
    require(cache["diskMode"] == "memoryOnly",
            "disk tier degraded to memoryOnly")
    daemon.shutdown_clean()


def scenario_kill9(serve_bin, scratch):
    """kill -9 mid-entry-write; the restarted daemon scrubs and the
    warm batch stays bitwise identical."""
    # A sleeping fsync holds the temp file on disk long enough for a
    # deterministic kill-9 "mid-write".
    daemon = Daemon(serve_bin, scratch, "kill9a",
                    fault_spec="cache.fsync=sleep:10000")
    cache_dir = daemon.cache_dir

    def doomed_request():
        try:
            serve_request(daemon.socket_path,
                          km_request("victim", seed=11), timeout=30.0)
        except OSError:
            pass  # the daemon is about to be SIGKILLed mid-response

    worker = threading.Thread(target=doomed_request, daemon=True)
    worker.start()
    deadline = time.monotonic() + 20.0
    tmp_seen = False
    while time.monotonic() < deadline:
        if any(".tmp." in name for name in os.listdir(cache_dir)):
            tmp_seen = True
            break
        time.sleep(0.02)
    require(tmp_seen, "caught the daemon mid-entry-write (temp file)")
    daemon.kill9()
    log("ok   killed daemon with SIGKILL mid-write")
    require(any(".tmp." in n for n in os.listdir(cache_dir)),
            "the crash left an orphaned temp file behind")

    # Plant the other crash-artifact classes next to the real one.
    with open(os.path.join(cache_dir, "feedfacefeedface.json"),
              "w") as f:
        f.write('{"truncated": ')
    open(os.path.join(cache_dir, "0000000000000000.json"), "w").close()

    daemon = Daemon(serve_bin, scratch, "kill9b")
    cache = daemon.stats()["cache"]
    require(cache["scrubOrphanTmps"] >= 1,
            f"scrub removed the orphan temp file "
            f"({cache['scrubOrphanTmps']})")
    require(cache["scrubCorruptEntries"] >= 2,
            f"scrub removed the corrupt/empty entries "
            f"({cache['scrubCorruptEntries']})")
    require(not any(".tmp." in n for n in os.listdir(cache_dir)),
            "no temp files survive the scrub")

    _, raw_cold = serve_request(daemon.socket_path,
                                km_request("victim", seed=11))
    response, raw_warm = serve_request(daemon.socket_path,
                                       km_request("victim", seed=11))
    require(response["runs"][0]["cached"],
            "post-scrub warm request served from cache")
    require(raw_result_texts(raw_cold) == raw_result_texts(raw_warm),
            "post-crash results bitwise-identical cold vs warm")
    daemon.shutdown_clean()


def scenario_corrupt(serve_bin, scratch):
    """A cached entry corrupted on disk is repaired, never served."""
    seeder = Daemon(serve_bin, scratch, "corrupt_seed")
    response, raw_cold = serve_request(seeder.socket_path,
                                       km_request("a", seed=21))
    key = response["runs"][0]["key"]
    seeder.shutdown_clean()

    entry = os.path.join(scratch, "cache", key + ".json")
    with open(entry, "w") as f:
        f.write('{"status": "ok", "half')
    log(f"corrupted cached entry {key}")

    daemon = Daemon(serve_bin, scratch, "corrupt")
    cache = daemon.stats()["cache"]
    require(cache["invalidDiskEntries"] >= 1,
            "corruption was detected and counted")
    response, raw_warm = serve_request(daemon.socket_path,
                                       km_request("a", seed=21))
    require(response["runs"][0]["result"]["status"] == "ok",
            "corrupted entry re-simulated, not served")
    require(not response["runs"][0]["cached"],
            "the corrupt bytes were never spliced into a response")
    require(raw_result_texts(raw_cold) == raw_result_texts(raw_warm),
            "re-simulated result bitwise-identical to the original")
    response, _ = serve_request(daemon.socket_path,
                                km_request("a", seed=21))
    require(response["runs"][0]["cached"],
            "the repaired entry caches normally again")
    daemon.shutdown_clean()


def scenario_overload(serve_bin, scratch):
    """Burst a 1-dispatcher daemon: typed sheds, then recovery."""
    daemon = Daemon(
        serve_bin, scratch, "overload",
        extra_args=["--queue-depth", "1", "--dispatch-threads", "1",
                    "--retry-after-ms", "50"],
        fault_spec="job.execute=sleep:250")

    results = []
    lock = threading.Lock()

    def client(i):
        response, _ = serve_request(daemon.socket_path,
                                    km_request(f"burst-{i}",
                                               seed=300 + i),
                                    timeout=60.0)
        with lock:
            results.append(response)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    sheds = [r for r in results if r.get("type") == "overloaded"]
    served = [r for r in results if r.get("type") == "result"]
    require(len(sheds) >= 1,
            f"burst produced typed overloaded sheds ({len(sheds)}/8)")
    require(len(served) >= 1,
            f"burst still served some requests ({len(served)}/8)")
    for shed in sheds:
        require(shed.get("reason") == "queueFull",
                "shed reason is queueFull")
        require(shed.get("retryAfterMs", 0) >= 50,
                f"retryAfterMs hint present "
                f"({shed.get('retryAfterMs')})")
    require(daemon.stats()["server"]["shedQueueFull"] >= 1,
            "daemon counted the sheds")

    # A backoff client rides out the storm: retry until served.
    attempts = 0
    while True:
        attempts += 1
        require(attempts <= 50, "backoff client served within budget")
        response, _ = serve_request(daemon.socket_path,
                                    km_request("patient", seed=400))
        if response.get("type") == "result":
            break
        time.sleep(max(response.get("retryAfterMs", 50), 50) / 1000.0)
    log(f"ok   backoff client served after {attempts} attempt(s)")
    daemon.shutdown_clean()


SCENARIOS = {
    "enospc": scenario_enospc,
    "eio-read": scenario_eio_read,
    "kill9": scenario_kill9,
    "corrupt": scenario_corrupt,
    "overload": scenario_overload,
}


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--serve",
                        default="build/src/tools/apres_serve",
                        help="path to the apres_serve binary")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        help="run one scenario (default: all)")
    parser.add_argument("--log", help="also write the chaos log here")
    args = parser.parse_args()

    if not os.path.exists(args.serve):
        print(f"chaos_serve: no such binary: {args.serve}",
              file=sys.stderr)
        return 2

    names = [args.scenario] if args.scenario else sorted(SCENARIOS)
    failures = []
    for name in names:
        scratch = tempfile.mkdtemp(prefix=f"apres_chaos_{name}_")
        log(f"=== scenario {name} (scratch {scratch}) ===")
        try:
            SCENARIOS[name](args.serve, scratch)
            log(f"=== scenario {name}: PASS ===")
        except ChaosFailure as e:
            failures.append(name)
            log(f"=== scenario {name}: FAIL ({e}) ===")
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    if failures:
        log(f"chaos: {len(failures)} scenario(s) failed: "
            + ", ".join(failures))
    else:
        log(f"chaos: all {len(names)} scenario(s) passed")
    if args.log:
        with open(args.log, "w") as f:
            f.write("\n".join(LOG_LINES) + "\n")
        print(f"wrote {args.log}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
