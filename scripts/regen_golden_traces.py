#!/usr/bin/env python3
"""Regenerate the golden trace files under tests/golden/.

The golden-trace suite (tests/trace_test.cpp) pins the event sequence
of fixed-seed KM/NW mini-kernels under GTO+none and LAWS+SAP. When an
intentional simulator change alters that sequence, rerun this script:
it executes the test binary in regen mode (APRES_REGEN_GOLDEN=1), which
rewrites the files from the exact same configurations the comparing
tests use — there is no second source of truth to drift.

Usage:
    python3 scripts/regen_golden_traces.py [--build-dir build]
                                           [--golden-dir DIR]

Then inspect `git diff tests/golden/` and commit the new files with the
change that motivated them. --golden-dir redirects the output (via the
APRES_TRACE_GOLDEN_DIR env override the test binary honors) so smoke
tests can verify regeneration without touching the committed files.
"""

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "golden")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--build-dir",
        default=os.path.join(REPO_ROOT, "build"),
        help="CMake build directory containing tests/test_trace",
    )
    parser.add_argument(
        "--golden-dir",
        default=DEFAULT_GOLDEN_DIR,
        help="directory to (re)write golden files into "
        "(default: the checked-in tests/golden)",
    )
    args = parser.parse_args()
    golden_dir = os.path.abspath(args.golden_dir)

    binary = os.path.join(args.build_dir, "tests", "test_trace")
    if not os.path.exists(binary):
        print(
            f"error: {binary} not found — build first:\n"
            f"  cmake -B {args.build_dir} -S {REPO_ROOT} && "
            f"cmake --build {args.build_dir} --target test_trace",
            file=sys.stderr,
        )
        return 1

    os.makedirs(golden_dir, exist_ok=True)
    before = {
        name: os.path.getmtime(os.path.join(golden_dir, name))
        for name in os.listdir(golden_dir)
    }

    env = dict(
        os.environ,
        APRES_REGEN_GOLDEN="1",
        APRES_TRACE_GOLDEN_DIR=golden_dir,
    )
    result = subprocess.run(
        [binary, "--gtest_filter=KmNwMiniKernels/GoldenTrace.*"],
        env=env,
        cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        print("error: regen run failed", file=sys.stderr)
        return result.returncode

    written = sorted(
        name
        for name in os.listdir(golden_dir)
        if name not in before
        or os.path.getmtime(os.path.join(golden_dir, name)) > before[name]
    )
    if not written:
        print("error: no golden files were (re)written", file=sys.stderr)
        return 1
    for name in written:
        path = os.path.join(golden_dir, name)
        with open(path) as f:
            lines = sum(1 for _ in f)
        print(f"wrote {os.path.relpath(path, REPO_ROOT)} ({lines} lines)")
    if golden_dir == DEFAULT_GOLDEN_DIR:
        print("review with: git diff tests/golden/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
