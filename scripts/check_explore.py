#!/usr/bin/env python3
"""CI gate over apres_explore output.

Validates the two report documents the tool emits:

  explore REPORT.json   schema apres-explore-report-v1 — structural
                        check of every field the exploration loop
                        promises, plus the smoke assertion that the
                        campaign made progress: >= MIN_NEW_BINS fresh
                        coverage bins (cold corpus must discover
                        behavior, or the coverage map is broken).

  compare REPORT.json   schema apres-compare-report-v1 — every pair
                        must carry n >= 2 paired-seed samples and a
                        bootstrap interval with ciLow <= meanSpeedup
                        <= ciHigh; speedups must be finite and
                        positive (an IPC ratio of zero means a
                        simulation silently produced nothing).

usage:
    check_explore.py explore REPORT.json [--min-new-bins 1]
    check_explore.py compare REPORT.json [--min-seeds 2]

Exit 0 when the report is well-formed and the assertions hold, 1
otherwise.
"""

import argparse
import json
import math
import sys


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def require(doc, key, types, where):
    if key not in doc:
        raise ValueError(f"{where}: missing key '{key}'")
    if not isinstance(doc[key], types):
        raise ValueError(
            f"{where}: '{key}' is {type(doc[key]).__name__}, "
            f"want {types}"
        )
    return doc[key]


def check_explore(doc, min_new_bins):
    if require(doc, "schema", str, "report") != "apres-explore-report-v1":
        raise ValueError(f"unexpected schema {doc['schema']!r}")
    require(doc, "seed", int, "report")
    budget = require(doc, "budget", int, "report")
    probes = require(doc, "probes", list, "report")
    if not probes:
        raise ValueError("no probes in report")
    for i, probe in enumerate(probes):
        require(probe, "label", str, f"probes[{i}]")
        require(probe, "overrides", dict, f"probes[{i}]")
    initial = require(doc, "initialCoverage", int, "report")
    final = require(doc, "finalCoverage", int, "report")
    new_bins = require(doc, "newBins", int, "report")
    if final != initial + new_bins:
        raise ValueError(
            f"coverage books don't balance: initial {initial} + new "
            f"{new_bins} != final {final}"
        )
    rounds = require(doc, "rounds", list, "report")
    if len(rounds) != budget:
        raise ValueError(f"{len(rounds)} rounds recorded, budget {budget}")
    for i, rnd in enumerate(rounds):
        require(rnd, "mode", str, f"rounds[{i}]")
        require(rnd, "name", str, f"rounds[{i}]")
        require(rnd, "accepted", bool, f"rounds[{i}]")
        require(rnd, "newBins", list, f"rounds[{i}]")
    corpus = require(doc, "corpus", list, "report")
    for i, entry in enumerate(corpus):
        require(entry, "name", str, f"corpus[{i}]")
        require(entry, "signature", str, f"corpus[{i}]")
        require(entry, "kept", bool, f"corpus[{i}]")
    coverage = require(doc, "coverage", dict, "report")
    total = require(coverage, "total", int, "coverage")
    if total != final:
        raise ValueError(
            f"coverage.total {total} != finalCoverage {final}"
        )
    bins = require(coverage, "bins", list, "coverage")
    if len(bins) != total:
        raise ValueError(f"{len(bins)} bins listed, total says {total}")

    if new_bins < min_new_bins:
        raise ValueError(
            f"campaign found {new_bins} new bins, need >= {min_new_bins}"
        )
    kept = sum(1 for e in corpus if e["kept"])
    print(
        f"ok: explore report valid — {len(rounds)} rounds, "
        f"{new_bins} new bins, coverage {initial} -> {final}, "
        f"{kept}/{len(corpus)} corpus entries kept"
    )


def check_compare(doc, min_seeds):
    if require(doc, "schema", str, "report") != "apres-compare-report-v1":
        raise ValueError(f"unexpected schema {doc['schema']!r}")
    require(doc, "seed", int, "report")
    num_seeds = require(doc, "numSeeds", int, "report")
    require(doc, "resamples", int, "report")
    confidence = require(doc, "confidence", (int, float), "report")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence {confidence} outside (0, 1)")
    policies = require(doc, "policies", list, "report")
    if len(policies) < 2:
        raise ValueError("need >= 2 policies for a comparison")
    kernels = require(doc, "kernels", list, "report")
    if not kernels:
        raise ValueError("no kernels in report")
    pairs = require(doc, "pairs", list, "report")
    expected = len(kernels) * len(policies) * (len(policies) - 1) // 2
    if len(pairs) != expected:
        raise ValueError(
            f"{len(pairs)} pairs reported, expected {expected} "
            f"({len(kernels)} kernels x C({len(policies)},2) policies)"
        )
    for i, pair in enumerate(pairs):
        where = f"pairs[{i}]"
        require(pair, "kernel", str, where)
        require(pair, "baseline", str, where)
        require(pair, "candidate", str, where)
        n = require(pair, "n", int, where)
        if n < min_seeds or n != num_seeds:
            raise ValueError(
                f"{where}: n={n}, want numSeeds={num_seeds} >= {min_seeds}"
            )
        mean = require(pair, "meanSpeedup", (int, float), where)
        lo = require(pair, "ciLow", (int, float), where)
        hi = require(pair, "ciHigh", (int, float), where)
        for label, v in (("meanSpeedup", mean), ("ciLow", lo),
                         ("ciHigh", hi)):
            if not (isinstance(v, (int, float)) and math.isfinite(v)
                    and v > 0):
                raise ValueError(f"{where}: {label}={v!r} not finite > 0")
        if not lo <= mean <= hi:
            raise ValueError(
                f"{where}: interval [{lo}, {hi}] does not bracket "
                f"mean {mean}"
            )
        samples = require(pair, "speedups", list, where)
        if len(samples) != n:
            raise ValueError(
                f"{where}: {len(samples)} speedup samples, n={n}"
            )
    sims = require(doc, "simulations", int, "report")
    hits = require(doc, "cacheHits", int, "report")
    print(
        f"ok: compare report valid — {len(pairs)} pairs over "
        f"{num_seeds} seeds each ({sims} simulations, {hits} cache hits)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=("explore", "compare"))
    parser.add_argument("report", help="report JSON from apres_explore")
    parser.add_argument("--min-new-bins", type=int, default=1)
    parser.add_argument("--min-seeds", type=int, default=2)
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read {args.report}: {e}")

    try:
        if args.mode == "explore":
            check_explore(doc, args.min_new_bins)
        else:
            check_compare(doc, args.min_seeds)
    except ValueError as e:
        return fail(str(e))
    return 0


if __name__ == "__main__":
    sys.exit(main())
