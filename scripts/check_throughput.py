#!/usr/bin/env python3
"""Throughput-regression gate over bench_throughput output.

Compares the ffCyclesPerSec of every scenario in a freshly generated
BENCH_throughput.json against the committed baseline floor and fails
(exit 1) when any scenario runs more than TOLERANCE below it, or when
any engine's statistics diverged (statsIdentical false — naive, ff
and parallel must stay bitwise identical; that equivalence is part of
the contract).

When the baseline carries a "parallelScenarios" map, the same check
runs against parCyclesPerSec — the sharded epoch engine's throughput
— so losing the parallel engine (or its scaling) also trips CI.

A "parSpeedupFloors" map in the baseline additionally gates the
parallel-over-ff speedup ratio itself (e.g. KM-fullchip must reach
1.0x). Ratio floors are skipped when the results report fewer than
two hardware threads — a single-core host cannot demonstrate a
parallel speedup, only absolute throughput.

Scenarios that skip the naive run carry "naiveSkipped": true and omit
the naive-derived fields entirely; that is reported as "naive skipped"
and is not a failure, unlike a measured-but-zero throughput.

usage: check_throughput.py RESULTS_JSON BASELINE_JSON
"""

import json
import sys

TOLERANCE = 0.30  # fail when >30% below the baseline floor

# Non-finite doubles serialize as tagged string sentinels rather than
# null (see src/common/json.hpp), so a NaN throughput arrives here as
# the string "NaN" — report it as a failure instead of crashing on a
# str/float comparison.
NON_FINITE = {"NaN", "Infinity", "-Infinity"}


def as_finite(value):
    """Return value as a finite float, or None when it is a non-finite
    sentinel (or anything else numbers.json should never contain)."""
    if isinstance(value, (int, float)):
        return float(value)
    return None


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        results = json.load(f)
    with open(sys.argv[2]) as f:
        baseline_doc = json.load(f)
    baseline = baseline_doc["scenarios"]
    par_baseline = baseline_doc.get("parallelScenarios", {})
    speedup_floors = baseline_doc.get("parSpeedupFloors", {})
    hw_threads = results.get("hwThreads", 0)

    failed = False
    seen = set()
    for scenario in results["scenarios"]:
        name = scenario["name"]
        seen.add(name)
        if not scenario["statsIdentical"]:
            print(f"FAIL {name}: engine stats diverged (naive / ff / "
                  "parallel must be bitwise identical)")
            failed = True
        for metric, floors, speedup_key in (
                ("ffCyclesPerSec", baseline, "speedup"),
                ("parCyclesPerSec", par_baseline, "parSpeedup")):
            if name not in floors:
                if metric == "ffCyclesPerSec":
                    print(f"WARN {name}: no baseline entry, skipping")
                continue
            measured = as_finite(scenario.get(metric))
            if measured is None:
                raw = scenario.get(metric)
                tag = "non-finite" if raw in NON_FINITE else "non-numeric"
                print(f"FAIL {name}: {metric} is {tag} ({raw!r})")
                failed = True
                continue
            floor = floors[name] * (1.0 - TOLERANCE)
            verdict = "ok" if measured >= floor else "FAIL"
            if speedup_key == "speedup" and scenario.get("naiveSkipped"):
                speedup_text = "naive skipped"
            else:
                speedup = as_finite(scenario.get(speedup_key))
                speedup_text = (f"{speedup:.2f}x" if speedup is not None
                                else repr(scenario.get(speedup_key)))
            print(f"{verdict} {name} [{metric}]: {measured:,.0f} "
                  f"cycles/sec (floor {floor:,.0f}, baseline "
                  f"{floors[name]:,.0f}, speedup {speedup_text})")
            failed = failed or measured < floor

        if name in speedup_floors:
            ratio_floor = speedup_floors[name]
            ratio = as_finite(scenario.get("parSpeedup"))
            if hw_threads < 2:
                print(f"SKIP {name} [parSpeedup]: host reports "
                      f"{hw_threads} hardware thread(s); a parallel "
                      "speedup floor needs at least 2")
            elif ratio is None:
                print(f"FAIL {name}: parSpeedup is non-numeric "
                      f"({scenario.get('parSpeedup')!r})")
                failed = True
            else:
                verdict = "ok" if ratio >= ratio_floor else "FAIL"
                shards = scenario.get("shards")
                print(f"{verdict} {name} [parSpeedup]: {ratio:.2f}x "
                      f"over ff at {shards} shards "
                      f"(floor {ratio_floor:.2f}x)")
                failed = failed or ratio < ratio_floor

    missing = (set(baseline) | set(par_baseline) |
               set(speedup_floors)) - seen
    if missing:
        print(f"FAIL: baseline scenarios missing from results: "
              f"{sorted(missing)}")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
