#!/usr/bin/env python3
"""CI gate for the apres_serve result cache.

Takes the responses of two identical batches submitted to a fresh
daemon (cold, then warm) and asserts the cache contract:

  * every run in the warm response was served from cache,
  * the daemon ran zero additional simulations for the warm batch,
  * every warm result document is BYTE-identical to its cold twin
    (raw-text comparison, not parse-and-compare), and
  * every run completed with status "ok".

Writes a cache-hit summary (fingerprint, counters, hit ratio) to
--stats for upload as a CI artifact.

usage: check_serve_cache.py COLD_JSON WARM_JSON [--stats OUT_JSON]

Eviction mode (--eviction) instead drives a LIVE daemon that was
started with a disk-cache cap: it submits a sequence of distinct
configurations one at a time (so the access order is exact), then
asserts the LRU contract:

  * the daemon evicted (stats.cache.evictions > 0),
  * the surviving <key>.json files are exactly a SUFFIX of the
    submission order (pure LRU: whatever survives is the newest tail),
  * the daemon's accounting (diskEntries, diskBytes) matches the
    directory byte-for-byte, and
  * the caps hold (diskBytes <= maxBytes, diskEntries <= maxEntries).

usage: check_serve_cache.py --eviction --socket SOCK --cache-dir DIR
                            [--jobs N] [--stats OUT_JSON]
"""

import argparse
import json
import os
import socket
import sys


def serve_request(socket_path, doc):
    """One request/response round trip against a live daemon."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.connect(socket_path)
        s.sendall(json.dumps(doc).encode())
        s.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return json.loads(b"".join(chunks).decode())


def raw_result_texts(response_text):
    """Extract the raw text of every runs[i].result object, in order,
    with string-aware brace matching (the same algorithm the C++ test
    suite uses, so both layers enforce the same bitwise contract)."""
    marker = '"result": {'
    results = []
    pos = 0
    while True:
        pos = response_text.find(marker, pos)
        if pos == -1:
            return results
        start = pos + len(marker) - 1  # at the '{'
        depth = 0
        in_string = False
        i = start
        while i < len(response_text):
            c = response_text[i]
            if in_string:
                if c == "\\":
                    i += 1
                elif c == '"':
                    in_string = False
            elif c == '"':
                in_string = True
            elif c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    results.append(response_text[start:i + 1])
                    break
            i += 1
        else:
            raise ValueError("unbalanced result object")
        pos = i


def run_eviction_mode(args) -> int:
    """Drive a live capped daemon and assert the LRU eviction contract."""
    failed = False

    def check(condition, message):
        nonlocal failed
        if condition:
            print(f"ok   {message}")
        else:
            print(f"FAIL {message}")
            failed = True

    # Submit one job per request so the daemon's access order is
    # exactly our submission order. Distinct seeds give distinct cache
    # keys with identical (tiny) runtimes.
    keys = []
    for i in range(args.jobs):
        response = serve_request(args.socket, {
            "type": "run",
            "jobs": [{
                "label": f"evict-{i}",
                "workload": "KM",
                "scale": 0.01,
                "overrides": {"seed": 90000 + i},
            }],
        })
        check(response.get("type") == "result",
              f"evict-{i}: got a result response")
        if response.get("type") != "result":
            return 1
        run = response["runs"][0]
        check(run["result"]["status"] == "ok", f"evict-{i}: status ok")
        keys.append(run["key"])

    check(len(set(keys)) == len(keys), "every configuration got a "
                                       f"distinct cache key ({len(keys)})")

    stats = serve_request(args.socket, {"type": "stats"})["cache"]
    on_disk = {
        name[:-len(".json")]: os.path.getsize(
            os.path.join(args.cache_dir, name))
        for name in os.listdir(args.cache_dir)
        if name.endswith(".json")
    }

    check(stats["evictions"] > 0,
          f"cap forced evictions ({stats['evictions']})")
    check(len(on_disk) == stats["diskEntries"],
          f"directory entry count matches stats ({len(on_disk)})")
    check(sum(on_disk.values()) == stats["diskBytes"],
          f"directory byte total matches stats ({stats['diskBytes']})")
    if stats["maxBytes"]:
        check(stats["diskBytes"] <= stats["maxBytes"],
              f"byte cap holds ({stats['diskBytes']} <= "
              f"{stats['maxBytes']})")
    if stats["maxEntries"]:
        check(stats["diskEntries"] <= stats["maxEntries"],
              f"entry cap holds ({stats['diskEntries']} <= "
              f"{stats['maxEntries']})")

    # Pure LRU: the survivors must be exactly the newest tail of the
    # submission order — an eviction policy that skipped an older key
    # or dropped a newer one fails here.
    survivors = [k for k in keys if k in on_disk]
    tail = keys[len(keys) - len(survivors):]
    check(survivors == tail,
          f"survivors are the newest suffix of the access order "
          f"({len(survivors)}/{len(keys)})")
    check(set(on_disk) <= set(keys),
          "no unexplained files in the cache directory")

    if args.stats:
        summary = {
            "jobs": args.jobs,
            "keys": keys,
            "survivors": survivors,
            "cache": stats,
        }
        with open(args.stats, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
        print(f"wrote {args.stats}")

    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("cold", nargs="?")
    parser.add_argument("warm", nargs="?")
    parser.add_argument("--stats", help="write a cache-hit summary here")
    parser.add_argument("--eviction", action="store_true",
                        help="drive a live capped daemon and assert "
                             "the LRU eviction contract")
    parser.add_argument("--socket", help="eviction mode: daemon socket")
    parser.add_argument("--cache-dir",
                        help="eviction mode: daemon cache directory")
    parser.add_argument("--jobs", type=int, default=12,
                        help="eviction mode: configurations to submit")
    args = parser.parse_args()

    if args.eviction:
        if not args.socket or not args.cache_dir:
            parser.error("--eviction requires --socket and --cache-dir")
        return run_eviction_mode(args)
    if not args.cold or not args.warm:
        parser.error("COLD_JSON and WARM_JSON are required "
                     "(or use --eviction)")

    with open(args.cold) as f:
        cold_text = f.read()
    with open(args.warm) as f:
        warm_text = f.read()
    cold = json.loads(cold_text)
    warm = json.loads(warm_text)

    failed = False

    def check(condition, message):
        nonlocal failed
        if condition:
            print(f"ok   {message}")
        else:
            print(f"FAIL {message}")
            failed = True

    check(cold.get("type") == "result", "cold response is a result")
    check(warm.get("type") == "result", "warm response is a result")
    if failed:
        print(json.dumps(cold, indent=2)[:2000])
        return 1

    cold_runs = cold["runs"]
    warm_runs = warm["runs"]
    check(len(cold_runs) == len(warm_runs) and len(cold_runs) >= 8,
          f"batch carries >= 8 configs ({len(cold_runs)})")

    for i, (c, w) in enumerate(zip(cold_runs, warm_runs)):
        label = w.get("label", f"runs[{i}]")
        check(w["result"]["status"] == "ok", f"{label}: status ok")
        check(w["cached"], f"{label}: warm run served from cache")

    check(warm["simulations"] == cold["simulations"],
          f"zero re-simulation on the warm batch "
          f"(simulations stayed at {cold['simulations']})")

    cold_raw = raw_result_texts(cold_text)
    warm_raw = raw_result_texts(warm_text)
    check(len(cold_raw) == len(warm_raw) == len(cold_runs),
          "extracted one raw result per run")
    for i, (c, w) in enumerate(zip(cold_raw, warm_raw)):
        if c != w:
            check(False, f"runs[{i}]: warm result bitwise-identical")
    if cold_raw == warm_raw:
        check(True, f"all {len(cold_raw)} warm results bitwise-identical "
                    "to their cold twins")

    if args.stats:
        hits = warm["cache"]["memoryHits"] + warm["cache"]["diskHits"]
        total = hits + warm["cache"]["misses"]
        summary = {
            "fingerprint": warm["fingerprint"],
            "batchSize": len(warm_runs),
            "coldCache": cold["cache"],
            "warmCache": warm["cache"],
            "simulations": warm["simulations"],
            "cumulativeHitRatio": hits / total if total else 0.0,
            "warmBatchFullyCached": all(r["cached"] for r in warm_runs),
        }
        with open(args.stats, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
        print(f"wrote {args.stats}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
