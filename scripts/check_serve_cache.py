#!/usr/bin/env python3
"""CI gate for the apres_serve result cache.

Takes the responses of two identical batches submitted to a fresh
daemon (cold, then warm) and asserts the cache contract:

  * every run in the warm response was served from cache,
  * the daemon ran zero additional simulations for the warm batch,
  * every warm result document is BYTE-identical to its cold twin
    (raw-text comparison, not parse-and-compare), and
  * every run completed with status "ok".

Writes a cache-hit summary (fingerprint, counters, hit ratio) to
--stats for upload as a CI artifact.

usage: check_serve_cache.py COLD_JSON WARM_JSON [--stats OUT_JSON]
"""

import argparse
import json
import sys


def raw_result_texts(response_text):
    """Extract the raw text of every runs[i].result object, in order,
    with string-aware brace matching (the same algorithm the C++ test
    suite uses, so both layers enforce the same bitwise contract)."""
    marker = '"result": {'
    results = []
    pos = 0
    while True:
        pos = response_text.find(marker, pos)
        if pos == -1:
            return results
        start = pos + len(marker) - 1  # at the '{'
        depth = 0
        in_string = False
        i = start
        while i < len(response_text):
            c = response_text[i]
            if in_string:
                if c == "\\":
                    i += 1
                elif c == '"':
                    in_string = False
            elif c == '"':
                in_string = True
            elif c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    results.append(response_text[start:i + 1])
                    break
            i += 1
        else:
            raise ValueError("unbalanced result object")
        pos = i


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("cold")
    parser.add_argument("warm")
    parser.add_argument("--stats", help="write a cache-hit summary here")
    args = parser.parse_args()

    with open(args.cold) as f:
        cold_text = f.read()
    with open(args.warm) as f:
        warm_text = f.read()
    cold = json.loads(cold_text)
    warm = json.loads(warm_text)

    failed = False

    def check(condition, message):
        nonlocal failed
        if condition:
            print(f"ok   {message}")
        else:
            print(f"FAIL {message}")
            failed = True

    check(cold.get("type") == "result", "cold response is a result")
    check(warm.get("type") == "result", "warm response is a result")
    if failed:
        print(json.dumps(cold, indent=2)[:2000])
        return 1

    cold_runs = cold["runs"]
    warm_runs = warm["runs"]
    check(len(cold_runs) == len(warm_runs) and len(cold_runs) >= 8,
          f"batch carries >= 8 configs ({len(cold_runs)})")

    for i, (c, w) in enumerate(zip(cold_runs, warm_runs)):
        label = w.get("label", f"runs[{i}]")
        check(w["result"]["status"] == "ok", f"{label}: status ok")
        check(w["cached"], f"{label}: warm run served from cache")

    check(warm["simulations"] == cold["simulations"],
          f"zero re-simulation on the warm batch "
          f"(simulations stayed at {cold['simulations']})")

    cold_raw = raw_result_texts(cold_text)
    warm_raw = raw_result_texts(warm_text)
    check(len(cold_raw) == len(warm_raw) == len(cold_runs),
          "extracted one raw result per run")
    for i, (c, w) in enumerate(zip(cold_raw, warm_raw)):
        if c != w:
            check(False, f"runs[{i}]: warm result bitwise-identical")
    if cold_raw == warm_raw:
        check(True, f"all {len(cold_raw)} warm results bitwise-identical "
                    "to their cold twins")

    if args.stats:
        hits = warm["cache"]["memoryHits"] + warm["cache"]["diskHits"]
        total = hits + warm["cache"]["misses"]
        summary = {
            "fingerprint": warm["fingerprint"],
            "batchSize": len(warm_runs),
            "coldCache": cold["cache"],
            "warmCache": warm["cache"],
            "simulations": warm["simulations"],
            "cumulativeHitRatio": hits / total if total else 0.0,
            "warmBatchFullyCached": all(r["cached"] for r in warm_runs),
        }
        with open(args.stats, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
        print(f"wrote {args.stats}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
